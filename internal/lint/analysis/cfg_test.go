package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// loadFunc parses and typechecks one source file and returns the named
// function's body CFG plus the type info, for the table-driven shape
// tests.
type loadedFunc struct {
	fset *token.FileSet
	info *types.Info
	fn   *ast.FuncDecl
	cfg  *CFG
}

func loadFunc(t *testing.T, src, name string) *loadedFunc {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return &loadedFunc{fset: fset, info: info, fn: fd, cfg: BuildCFG(fd.Body)}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// callNode finds the CFG block and node containing the call marker(...)
// (markers are no-op functions declared by the snippet).
func (l *loadedFunc) callNode(t *testing.T, marker string) (*Block, ast.Node) {
	t.Helper()
	for _, b := range l.cfg.Blocks {
		for _, n := range b.Nodes {
			found := false
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == marker {
						found = true
					}
				}
				return !found
			})
			if found {
				return b, n
			}
		}
	}
	t.Fatalf("marker %s() not found in any CFG node", marker)
	return nil, nil
}

// localVar resolves a function-local variable by name.
func (l *loadedFunc) localVar(t *testing.T, name string) *types.Var {
	t.Helper()
	var v *types.Var
	ast.Inspect(l.fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if d, ok := l.info.Defs[id].(*types.Var); ok && v == nil {
			v = d
		}
		return true
	})
	if v == nil {
		t.Fatalf("local %s not found", name)
	}
	return v
}

const cfgShapesSrc = `package cfgtest

func mark(int)   {}
func mark2(int)  {}
func sink(func()) {}
func cond() bool { return false }
func fresh() int { return 0 }

func branchShape() {
	x := 1
	if cond() {
		x = 2
	} else {
		x = 3
	}
	mark(x)
}

func loopShape(n int) {
	x := 1
	for i := 0; i < n; i++ {
		mark(x)
		x = fresh()
	}
	mark2(x)
}

func earlyReturnShape() {
	x := 1
	if cond() {
		mark2(x)
		return
	}
	x = 2
	mark(x)
}

func deferShape() {
	x := 1
	defer mark(x)
	x = 2
	mark2(x)
}

func goroutineShape() {
	x := 1
	go func() {
		mark(x)
	}()
	x = 2
	mark2(x)
}

func switchShape(k int) {
	x := 1
	switch k {
	case 0:
		x = 2
		fallthrough
	case 1:
		mark(x)
	default:
		x = 3
	}
	mark2(x)
}

func labeledShape(n int) {
	x := 1
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cond() {
				x = 2
				continue outer
			}
			if cond() {
				break outer
			}
		}
		mark(x)
	}
	mark2(x)
}
`

// defNodesReaching is shorthand: the definition nodes of variable name
// that may reach the marker call.
func defNodesReaching(t *testing.T, l *loadedFunc, marker, name string) []ast.Node {
	t.Helper()
	r := SolveReachingDefs(l.cfg, l.info)
	blk, node := l.callNode(t, marker)
	var nodes []ast.Node
	for _, d := range r.DefsReaching(blk, node, l.localVar(t, name)) {
		nodes = append(nodes, d.Node)
	}
	return nodes
}

func TestCFGBranchShape(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "branchShape")
	// Both arm assignments reach the use after the join; the initial
	// x := 1 is killed on every path.
	defs := defNodesReaching(t, l, "mark", "x")
	if len(defs) != 2 {
		t.Fatalf("defs reaching mark(x) after if/else = %d, want 2 (both arms)", len(defs))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "loopShape")
	// First iteration sees x := 1; later iterations see the body's
	// x = fresh() via the back edge — both must reach the in-loop use.
	defs := defNodesReaching(t, l, "mark", "x")
	if len(defs) != 2 {
		t.Fatalf("defs reaching in-loop mark(x) = %d, want 2 (init + back edge)", len(defs))
	}
	// The loop may run zero times, so both defs also reach the exit use.
	defs = defNodesReaching(t, l, "mark2", "x")
	if len(defs) != 2 {
		t.Fatalf("defs reaching post-loop mark2(x) = %d, want 2", len(defs))
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "earlyReturnShape")
	// The return-arm use sees only the initial definition...
	defs := defNodesReaching(t, l, "mark2", "x")
	if len(defs) != 1 {
		t.Fatalf("defs reaching pre-return mark2(x) = %d, want 1", len(defs))
	}
	// ...and the fallthrough path's x = 2 kills it for the final use: the
	// returning path must not leak its state past the return.
	defs = defNodesReaching(t, l, "mark", "x")
	if len(defs) != 1 {
		t.Fatalf("defs reaching post-return mark(x) = %d, want 1 (x = 2 only)", len(defs))
	}
	if _, ok := defs[0].(*ast.AssignStmt); !ok {
		t.Fatalf("reaching def is %T, want the x = 2 assignment", defs[0])
	}
}

func TestCFGDeferIsANode(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "deferShape")
	// The defer statement must be an ordinary node (its arguments are
	// evaluated at the defer site)...
	var deferNode ast.Node
	for _, b := range l.cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferNode = n
			}
		}
	}
	if deferNode == nil {
		t.Fatal("defer statement does not appear as a CFG node")
	}
	// ...and control continues past it: the later x = 2 definition is
	// what reaches the trailing use.
	defs := defNodesReaching(t, l, "mark2", "x")
	if len(defs) != 1 {
		t.Fatalf("defs reaching mark2(x) after defer = %d, want 1", len(defs))
	}
}

func TestCFGGoroutineCapture(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "goroutineShape")
	// The go statement is a node, but the closure body's statements are
	// not part of the outer flow — no block may contain them.
	_, goNode := l.callNode(t, "mark")
	if _, ok := goNode.(*ast.GoStmt); !ok {
		t.Fatalf("node containing captured mark(x) is %T, want *ast.GoStmt (capture counts at creation)", goNode)
	}
	for _, b := range l.cfg.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						t.Fatal("closure body statement leaked into the outer CFG")
					}
				}
			}
		}
	}
	// InspectNode sees the capture at the go statement: the conservative
	// reading every analysis in this package wants.
	captured := false
	InspectNode(goNode, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" {
			captured = true
		}
		return true
	})
	if !captured {
		t.Fatal("InspectNode(go stmt) did not reach the captured variable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "switchShape")
	// case 0 assigns x = 2 and falls through into case 1's use, so the
	// use sees both the initial definition (direct case 1 entry) and the
	// fallthrough's x = 2.
	defs := defNodesReaching(t, l, "mark", "x")
	if len(defs) != 2 {
		t.Fatalf("defs reaching mark(x) in fallthrough case = %d, want 2", len(defs))
	}
	// After the switch: x := 1 survives case 1's path, x = 2 the
	// fallthrough path, x = 3 the default.
	defs = defNodesReaching(t, l, "mark2", "x")
	if len(defs) != 3 {
		t.Fatalf("defs reaching post-switch mark2(x) = %d, want 3", len(defs))
	}
}

func TestCFGLabeledLoops(t *testing.T) {
	l := loadFunc(t, cfgShapesSrc, "labeledShape")
	// continue outer re-enters the outer loop: its x = 2 definition flows
	// to the next outer iteration's mark(x), joining the initial x := 1.
	defs := defNodesReaching(t, l, "mark", "x")
	if len(defs) != 2 {
		t.Fatalf("defs reaching mark(x) under continue outer = %d, want 2", len(defs))
	}
	// break outer exits both loops; every definition except the shadowed
	// ones reaches the final use.
	defs = defNodesReaching(t, l, "mark2", "x")
	if len(defs) != 2 {
		t.Fatalf("defs reaching mark2(x) after break outer = %d, want 2", len(defs))
	}
}
