// Package linttest runs pclasslint analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources under testdata/src/<path> annotate expected findings with
// "// want `regexp`" comments, and the harness fails the test on any
// missing or unexpected diagnostic.
//
// Fixture packages may import each other (testdata/src/<path> is the
// import root, so a file in testdata/src/immut/use imports "immut/def")
// and the standard library (resolved by the source importer, since the
// fixtures are compiled from source, never installed).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// Run analyzes the fixture packages named by their import paths under
// testdata/src and checks diagnostics against // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := &loader{
		fset: token.NewFileSet(),
		root: root,
		pkgs: make(map[string]*fixture),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range pkgPaths {
		fx, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		runOne(t, a, l, fx)
	}
}

// fixture is one loaded fixture package.
type fixture struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	facts *facts.Package
}

// loader resolves fixture imports from the testdata tree and everything
// else from the standard library's source importer.
type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*fixture
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if fx, err := l.load(path); err == nil && fx != nil {
		return fx.pkg, nil
	} else if err != nil {
		return nil, err
	}
	return l.std.Import(path)
}

// load parses and typechecks one fixture package, returning (nil, nil)
// when path is not under the fixture root.
func (l *loader) load(path string) (*fixture, error) {
	if fx, ok := l.pkgs[path]; ok {
		return fx, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fx := &fixture{
		path:  path,
		files: files,
		pkg:   pkg,
		info:  info,
		facts: facts.Scan(files, pkg, info),
	}
	l.pkgs[path] = fx
	return fx, nil
}

// runOne executes the analyzer over one fixture and diffs diagnostics
// against the fixture's want annotations.
func runOne(t *testing.T, a *analysis.Analyzer, l *loader, fx *fixture) {
	t.Helper()
	var diags []analysis.Diagnostic
	sup := analysis.BuildSuppressions(l.fset, fx.files)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     fx.files,
		Pkg:       fx.pkg,
		TypesInfo: fx.info,
		Facts:     fx.facts,
		DepFacts: func(path string) *facts.Package {
			if dep, ok := l.pkgs[path]; ok {
				return dep.facts
			}
			return nil
		},
		Report: func(d analysis.Diagnostic) {
			if !sup.Suppressed(l.fset.Position(d.Pos), a.SuppressKey) {
				diags = append(diags, d)
			}
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, fx.path, err)
	}

	wants := collectWants(t, l.fset, fx.files)
	// Match every diagnostic against an unconsumed want on its line.
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the quoted expectation patterns from a comment:
// double-quoted or backquoted Go strings after the word "want".
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses // want annotations from every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					expr := q[1 : len(q)-1]
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, q, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}
