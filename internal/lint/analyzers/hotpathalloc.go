// Package analyzers holds pclasslint's domain-specific checks: the
// engine-room invariants of this repository that the Go compiler cannot
// see (allocation-free hot paths, immutable shared rulesets, lock
// discipline, panic message style, exhaustive engine dispatch).
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// HotPathAlloc flags allocating constructs inside //pclass:hotpath
// functions.
var HotPathAlloc = &analysis.Analyzer{
	Name:        "hotpathalloc",
	SuppressKey: "alloc",
	Doc: `forbid allocation in //pclass:hotpath functions

The batched classification fast paths (ClassifyBatch implementations,
flowcache probe/insert, bitvec kernels, packet.Key.StridesInto) promise
zero allocations per operation; benchmarks gate the property but only a
static check keeps a stray make/append/fmt call out of a rarely-taken
branch. Inside an annotated function the analyzer flags make, new,
append, fmt.* calls, string concatenation and string<->[]byte/[]rune
conversions, slice/map composite literals, address-taken composite
literals, closures and go statements. Arguments of panic calls are
exempt (the invariant-violation path is allowed to allocate while
dying). Suppress a finding with //pclass:allow-alloc.`,
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !facts.Annotated(fd.Doc, "hotpath") {
				continue
			}
			checkHotPathBody(pass, fd.Body)
		}
	}
	return nil
}

// checkHotPathBody walks one annotated function body, skipping panic
// arguments and not descending into closure bodies (the closure literal
// itself is already the finding).
func checkHotPathBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, x.Fun, "panic") {
				return false // dying path: message construction is exempt
			}
			switch {
			case isBuiltin(info, x.Fun, "make"):
				pass.Reportf(x.Pos(), "hot path calls make, which allocates")
			case isBuiltin(info, x.Fun, "new"):
				pass.Reportf(x.Pos(), "hot path calls new, which allocates")
			case isBuiltin(info, x.Fun, "append"):
				pass.Reportf(x.Pos(), "hot path calls append, which may grow its backing array")
			default:
				if name, ok := pkgFuncName(info, x.Fun, "fmt"); ok {
					pass.Reportf(x.Pos(), "hot path calls fmt.%s, which allocates", name)
				} else if msg, ok := allocatingConversion(info, x); ok {
					pass.Reportf(x.Pos(), "hot path %s", msg)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				pass.Reportf(x.OpPos, "hot path concatenates strings, which allocates")
			}
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(x)).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "hot path builds a slice literal, which allocates")
			case *types.Map:
				pass.Reportf(x.Pos(), "hot path builds a map literal, which allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "hot path takes the address of a composite literal, which may escape to the heap")
					return false
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "hot path builds a closure, which may escape to the heap")
			return false
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "hot path starts a goroutine, which allocates")
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	})
}

// isBuiltin reports whether fun is a use of the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// pkgFuncName matches a call target of the form <pkg>.<Name> for the
// given imported package path and returns Name.
func pkgFuncName(info *types.Info, fun ast.Expr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// allocatingConversion detects string <-> []byte / []rune conversions.
func allocatingConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	dst := types.Unalias(tv.Type).Underlying()
	src := types.Unalias(info.TypeOf(call.Args[0])).Underlying()
	switch {
	case isStringType(dst) && isByteOrRuneSlice(src):
		return "converts a slice to string, which allocates", true
	case isByteOrRuneSlice(dst) && isStringType(src):
		return "converts a string to a slice, which allocates", true
	}
	return "", false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
