package analyzers

import (
	"go/ast"
	"go/types"

	"pktclass/internal/lint/analysis"
)

// Immutability flags writes through fields of //pclass:immutable types
// outside their defining package.
var Immutability = &analysis.Analyzer{
	Name:        "immutability",
	SuppressKey: "mutate",
	Doc: `forbid field writes to //pclass:immutable types outside their package

A built *ruleset.Expanded (and the *ruleset.RuleSet it came from) is
shared by every engine constructed over it and by the serving layer's
differential verifier; PR 2 shipped a real bug where
stridebv.UpdateEntry wrote the shared entry table in place. Outside the
defining package the analyzer flags any assignment, ++/--, copy or
append whose destination reaches through a field of an annotated type —
including element writes like ex.Entries[j] = v, which mutate shared
backing arrays. Construction inside the defining package is unrestricted.
A deliberate write to storage the writer owns (e.g. a copy-on-write
private clone) is declared with //pclass:allow-mutate.`,
	Run: runImmutability,
}

func runImmutability(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					checkImmutableWrite(pass, lhs, "assignment")
				}
			case *ast.IncDecStmt:
				checkImmutableWrite(pass, x.X, "update")
			case *ast.CallExpr:
				// copy(dst, ...) and append's first argument both mutate or
				// republish the destination's backing array.
				if len(x.Args) > 0 && isBuiltin(pass.TypesInfo, x.Fun, "copy") {
					checkImmutableWrite(pass, x.Args[0], "copy")
				}
			}
			return true
		})
	}
	return nil
}

// checkImmutableWrite reports when expr (a write destination) reaches
// through a field selection on an immutable-annotated named type declared
// in another package.
func checkImmutableWrite(pass *analysis.Pass, expr ast.Expr, how string) {
	e := expr
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if named, ok := immutableOwner(pass, sel.Recv()); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() != pass.Pkg.Path() {
						pass.Reportf(expr.Pos(),
							"%s writes field %s of //pclass:immutable type %s.%s outside its defining package",
							how, x.Sel.Name, obj.Pkg().Name(), obj.Name())
						return
					}
				}
			}
			e = x.X
		default:
			return
		}
	}
}

// immutableOwner unwraps pointers and reports whether t is a named type
// annotated //pclass:immutable in its defining package.
func immutableOwner(pass *analysis.Pass, t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	fs := pass.FactsFor(obj.Pkg())
	if fs.HasImmutable(obj.Name()) {
		return named, true
	}
	return nil, false
}
