package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// CowWrite confines element writes into //pclass:cow storage to
// //pclass:cow-mutator functions.
var CowWrite = &analysis.Analyzer{
	Name:        "cowwrite",
	SuppressKey: "cow",
	Doc: `confine writes into //pclass:cow storage to //pclass:cow-mutator functions

Copy-on-write snapshots share backing arrays between parent and child
until a mutation detaches the touched region. That only works if every
in-place write funnels through the one mutation point that knows how to
un-alias first. PR 7 shipped the violation: bit writes went straight into
the shared words, so mutating a child silently edited its COW parent's
ruleset (caught as cross-snapshot corruption after Clone).

A field annotated //pclass:cow is such shared storage. In any function
not annotated //pclass:cow-mutator, the analyzer flags element writes
whose destination reaches the storage — an index or pointer store through
the field itself, through an alias of it (a local assigned the field, a
sub-slice of it, or a range over it), copy() with such a destination, and
calls of //pclass:mutates methods on values derived from it. Aliases are
tracked flow-sensitively, so storage that leaks into a local two branches
earlier is still guarded. Replacing the field header itself (s.mem =
fresh) is NOT flagged — pointing the field at fresh storage is exactly
the copy-on-write discipline. Results of calls are treated as detached
(Clone returns owned storage); an accessor that returns an interior alias
defeats that assumption and must be annotated or avoided. Suppress with
//pclass:allow-cow and say why the write cannot reach a shared word.`,
	Run: runCowWrite,
}

func runCowWrite(pass *analysis.Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		if annotatedFunc(fd, "cow-mutator") {
			return
		}
		checkCowWrite(pass, fd)
	})
	return nil
}

// cowFlow is the per-function alias-taint state of the cowwrite check.
type cowFlow struct {
	pass *analysis.Pass
}

func checkCowWrite(pass *analysis.Pass, fd *ast.FuncDecl) {
	cfg := analysis.BuildCFG(fd.Body)
	cf := &cowFlow{pass: pass}
	in := analysis.Forward(cfg, nil, cf.transfer)
	analysis.VisitBlocks(cfg, in, cf.transfer, func(_ *analysis.Block, n ast.Node, state analysis.FlowSet) {
		cf.checkNode(n, state)
	})
}

// chain describes how an expression relates to //pclass:cow storage: cow
// is true when a selector along the access path is an annotated field,
// base is the path's root local (nil when rooted elsewhere), and stores
// is true when the path writes through an index or pointer dereference —
// i.e. into backing storage rather than over a variable or field header.
type chain struct {
	cow    bool
	cowKey string
	base   *types.Var
	stores bool
}

// walkChain resolves an expression's access path.
func (cf *cowFlow) walkChain(e ast.Expr) chain {
	var c chain
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			c.stores = true
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			c.stores = true
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			if key, pkg, ok := fieldKey(cf.pass.TypesInfo, x); ok && cf.pass.FactsFor(pkg).HasCowField(key) {
				c.cow = true
				c.cowKey = key
			}
			e = x.X
		case *ast.Ident:
			c.base, _ = cf.pass.TypesInfo.Uses[x].(*types.Var)
			return c
		default:
			return c
		}
	}
}

// aliasesCow reports whether an expression may reference //pclass:cow
// storage under the current taint state. Call results are treated as
// detached copies (Clone and friends return owned storage).
func (cf *cowFlow) aliasesCow(e ast.Expr, state analysis.FlowSet) (chain, bool) {
	c := cf.walkChain(e)
	return c, c.cow || (c.base != nil && state.Has(c.base))
}

// transfer tracks alias taint: a local assigned a value that reaches cow
// storage becomes tainted; reassignment from a clean source clears it.
func (cf *cowFlow) transfer(n ast.Node, state analysis.FlowSet) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		// Only 1:1 assignments can forward an alias; multi-value RHSes are
		// call/comma-ok results, which are detached.
		for i, lhs := range x.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := lhsVar(cf.pass.TypesInfo, id)
			if v == nil {
				continue
			}
			tainted := false
			if len(x.Lhs) == len(x.Rhs) {
				_, tainted = cf.aliasesCow(ast.Unparen(x.Rhs[i]), state)
			}
			if tainted {
				state.Add(v)
			} else {
				state.Remove(v)
			}
		}
	case *ast.RangeStmt:
		// Ranging over cow storage hands out element aliases via the value
		// variable (relevant for slice-of-slice storage).
		if _, tainted := cf.aliasesCow(x.X, state); !tainted {
			return
		}
		if id, ok := x.Value.(*ast.Ident); ok && id != nil {
			if v := lhsVar(cf.pass.TypesInfo, id); v != nil {
				state.Add(v)
			}
		}
	}
}

// checkNode reports element writes that reach cow storage: index/pointer
// stores, ++/--, copy() destinations, and //pclass:mutates method calls
// on cow-derived values.
func (cf *cowFlow) checkNode(n ast.Node, state analysis.FlowSet) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			cf.checkStore(ast.Unparen(lhs), state)
		}
	case *ast.IncDecStmt:
		cf.checkStore(ast.Unparen(x.X), state)
	}
	analysis.InspectNode(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		cf.checkCall(call, state)
		return true
	})
}

// checkStore flags a destination whose access path writes into cow
// storage.
func (cf *cowFlow) checkStore(dst ast.Expr, state analysis.FlowSet) {
	c, aliases := cf.aliasesCow(dst, state)
	if !aliases || !c.stores {
		return
	}
	cf.report(dst.Pos(), c)
}

// checkCall flags copy() into cow storage and //pclass:mutates method
// calls on cow-derived receivers.
func (cf *cowFlow) checkCall(call *ast.CallExpr, state analysis.FlowSet) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
		if _, isBuiltin := cf.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			// copy writes through the destination's backing array even when
			// the destination is a bare alias, so no index is required.
			if c, aliases := cf.aliasesCow(ast.Unparen(call.Args[0]), state); aliases {
				cf.report(call.Args[0].Pos(), c)
			}
			return
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := calleeFunc(cf.pass.TypesInfo, call)
	if fn == nil || !funcFacts(cf.pass, fn).HasMutatorMethod(facts.FuncKey(fn)) {
		return
	}
	if c, aliases := cf.aliasesCow(sel.X, state); aliases {
		cf.report(call.Pos(), c)
	}
}

func (cf *cowFlow) report(pos token.Pos, c chain) {
	what := "//pclass:cow storage"
	if c.cowKey != "" {
		what = "//pclass:cow storage " + c.cowKey
	} else if c.base != nil {
		what = "an alias of //pclass:cow storage (" + c.base.Name() + ")"
	}
	cf.pass.Reportf(pos,
		"write into %s outside a //pclass:cow-mutator; parent and child snapshots may share this backing array (PR-7 aliased-write class)", what)
}
