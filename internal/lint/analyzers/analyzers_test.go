package analyzers_test

import (
	"testing"

	"pktclass/internal/lint/analyzers"
	"pktclass/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, analyzers.HotPathAlloc, "hotpath")
}

func TestImmutability(t *testing.T) {
	// def must load first so use's DepFacts can see its annotations; the
	// defining package itself must stay clean (construction is allowed).
	linttest.Run(t, analyzers.Immutability, "immut/def", "immut/use")
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, analyzers.LockSafe, "locksafe")
}

func TestPanicStyle(t *testing.T) {
	linttest.Run(t, analyzers.PanicStyle, "panicstyle")
}

func TestExhaustEngine(t *testing.T) {
	linttest.Run(t, analyzers.ExhaustEngine, "exhaust/def", "exhaust/use")
}

func TestAllRegistered(t *testing.T) {
	all := analyzers.All()
	if len(all) != 5 {
		t.Fatalf("All() = %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil || a.SuppressKey == "" {
			t.Errorf("analyzer %+v incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
}
