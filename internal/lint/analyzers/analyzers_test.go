package analyzers_test

import (
	"testing"

	"pktclass/internal/lint/analyzers"
	"pktclass/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, analyzers.HotPathAlloc, "hotpath")
}

func TestImmutability(t *testing.T) {
	// def must load first so use's DepFacts can see its annotations; the
	// defining package itself must stay clean (construction is allowed).
	linttest.Run(t, analyzers.Immutability, "immut/def", "immut/use")
}

func TestLockSafe(t *testing.T) {
	linttest.Run(t, analyzers.LockSafe, "locksafe")
}

func TestPanicStyle(t *testing.T) {
	linttest.Run(t, analyzers.PanicStyle, "panicstyle")
}

func TestExhaustEngine(t *testing.T) {
	linttest.Run(t, analyzers.ExhaustEngine, "exhaust/def", "exhaust/use")
}

func TestPoolLifetime(t *testing.T) {
	// def loads first so use's DepFacts sees the pooled/releases
	// annotations; def also carries the in-package sync.Pool cases.
	linttest.Run(t, analyzers.PoolLifetime, "pool/def", "pool/use")
}

func TestAtomicPin(t *testing.T) {
	linttest.Run(t, analyzers.AtomicPin, "pin")
}

func TestCowWrite(t *testing.T) {
	linttest.Run(t, analyzers.CowWrite, "cow/def", "cow/use")
}

func TestAllRegistered(t *testing.T) {
	all := analyzers.All()
	if len(all) != 8 {
		t.Fatalf("All() = %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil || a.SuppressKey == "" {
			t.Errorf("analyzer %+v incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
}
