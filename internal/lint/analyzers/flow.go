package analyzers

// Shared resolution helpers for the flow-sensitive analyzers
// (poollifetime, atomicpin, cowwrite): mapping call expressions to their
// callee objects and annotation facts, and field selections to their
// "Type.Field" fact keys.

import (
	"go/ast"
	"go/types"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// calleeFunc resolves a call expression's static callee, or nil for
// builtins, conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcFacts resolves the annotation facts of a function's defining
// package.
func funcFacts(pass *analysis.Pass, fn *types.Func) *facts.Package {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	return pass.FactsFor(fn.Pkg())
}

// isSyncPoolMethod reports whether fn is (*sync.Pool).<name>.
func isSyncPoolMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Pool" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// fieldKey returns the "Type.Field" fact key of a field selection along
// with the field's defining package, or ok=false when sel is not a direct
// field selection on a named (possibly pointer-to-named) type.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (key string, pkg *types.Package, ok bool) {
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", nil, false
	}
	field, _ := s.Obj().(*types.Var)
	if field == nil || field.Pkg() == nil {
		return "", nil, false
	}
	t := types.Unalias(s.Recv())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", nil, false
	}
	return n.Obj().Name() + "." + field.Name(), field.Pkg(), true
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// funcDecls yields every function declaration with a body in the pass.
func funcDecls(pass *analysis.Pass, f func(*ast.FuncDecl)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}
