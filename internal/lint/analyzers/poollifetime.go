package analyzers

import (
	"go/ast"
	"go/types"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// PoolLifetime flags uses of a pooled object after the call that may have
// returned it to the pool.
var PoolLifetime = &analysis.Analyzer{
	Name:        "poollifetime",
	SuppressKey: "pooled",
	Doc: `forbid touching a //pclass:pooled object after its //pclass:releases call

The batch scratch that makes the fast paths allocation-free comes from
sync.Pools, and a pooled object's lifetime ends at the call that may
return it — release it, then read one more field, and the read races the
next Get on another goroutine. PR 8 shipped exactly that: the steered
dispatch loop kept indexing sc.tasks after its last live task had been
sent, so a finishing worker could recycle the scratch under the
iteration (observed as a double-close of the batch's Pending).

The analyzer tracks function-local values that are pool-managed — locals
of a //pclass:pooled type (including parameters and receivers), values
returned by a //pclass:pooled getter, and sync.Pool.Get results — and
runs a forward may-analysis over the function's control-flow graph: once
a path passes a call that may release the value (a //pclass:releases
function taking it as receiver or argument, or sync.Pool.Put), any later
read, index, send, or call on that path is flagged, including uses
reached through a loop back edge. A deferred release runs at function
exit and poisons nothing. Reassigning the variable from a fresh source
ends the released state. Aliases are not tracked: the protocol is that
the variable handed to the release IS the handle whose lifetime ends.
Suppress with //pclass:allow-pooled and say which reference keeps the
object live.`,
	Run: runPoolLifetime,
}

func runPoolLifetime(pass *analysis.Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		checkPoolLifetime(pass, fd)
	})
	return nil
}

// poolFlow is the per-function state of the pool-lifetime check.
type poolFlow struct {
	pass *analysis.Pass
	// pooled is the set of tracked local variables; releasedBy names, for
	// diagnostics, the releasing callee last seen for each variable.
	pooled     map[*types.Var]bool
	releasedBy map[*types.Var]string
}

func checkPoolLifetime(pass *analysis.Pass, fd *ast.FuncDecl) {
	cfg := analysis.BuildCFG(fd.Body)
	pf := &poolFlow{
		pass:       pass,
		pooled:     make(map[*types.Var]bool),
		releasedBy: make(map[*types.Var]string),
	}
	// Seed: receiver and parameters of pooled types are pool-managed for
	// the whole call, locals join as they are assigned from pooled
	// sources (tracked flow-insensitively here; the release state is the
	// flow-sensitive part).
	for _, field := range fieldVars(pass, fd) {
		if pf.isPooledType(field.Type()) {
			pf.pooled[field] = true
		}
	}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			pf.collectPooledDefs(n)
		}
	}
	if len(pf.pooled) == 0 {
		return
	}

	in := analysis.Forward(cfg, nil, pf.transfer)
	analysis.VisitBlocks(cfg, in, pf.transfer, func(_ *analysis.Block, n ast.Node, state analysis.FlowSet) {
		pf.checkNode(n, state)
	})
}

// fieldVars lists the receiver, parameter, and named-result variables of a
// function declaration.
func fieldVars(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	add(fd.Recv)
	if fd.Type.Params != nil {
		add(fd.Type.Params)
	}
	if fd.Type.Results != nil {
		add(fd.Type.Results)
	}
	return out
}

// isPooledType reports whether t (or what it points to) is a
// //pclass:pooled named type.
func (pf *poolFlow) isPooledType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return pf.pass.FactsFor(n.Obj().Pkg()).HasPooledType(n.Obj().Name())
}

// collectPooledDefs marks locals assigned from a pooled source: a
// //pclass:pooled getter call, a sync.Pool.Get (possibly through a type
// assertion), or any value of a pooled type.
func (pf *poolFlow) collectPooledDefs(n ast.Node) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	pooledRHS := false
	if len(as.Rhs) == 1 {
		rhs := ast.Unparen(as.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok && ta.Type != nil {
			rhs = ast.Unparen(ta.X)
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			fn := calleeFunc(pf.pass.TypesInfo, call)
			if isSyncPoolMethod(fn, "Get") {
				pooledRHS = true
			} else if fn != nil && funcFacts(pf.pass, fn).HasPooledFunc(facts.FuncKey(fn)) {
				pooledRHS = true
			}
		}
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		v := lhsVar(pf.pass.TypesInfo, id)
		if v == nil {
			continue
		}
		if pooledRHS && !isBoolType(v.Type()) || pf.isPooledType(v.Type()) {
			pf.pooled[v] = true
		}
	}
}

// transfer applies one node's release/kill effects: calls that may return
// a tracked value to the pool mark it released; reassigning the variable
// clears the state. Deferred releases run at function exit and generate
// nothing.
func (pf *poolFlow) transfer(n ast.Node, state analysis.FlowSet) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	analysis.InspectNode(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, v := range pf.releasedVars(call) {
			state.Add(v)
		}
		return true
	})
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := lhsVar(pf.pass.TypesInfo, id); v != nil {
					state.Remove(v)
				}
			}
		}
	}
}

// releasedVars lists the tracked variables a call may return to the pool:
// the receiver and plain-identifier arguments of a //pclass:releases
// function, or the argument of sync.Pool.Put.
func (pf *poolFlow) releasedVars(call *ast.CallExpr) []*types.Var {
	fn := calleeFunc(pf.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	releases := funcFacts(pf.pass, fn).HasReleaseFunc(facts.FuncKey(fn)) || isSyncPoolMethod(fn, "Put")
	if !releases {
		return nil
	}
	var out []*types.Var
	appendVar := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := pf.pass.TypesInfo.Uses[id].(*types.Var); ok && pf.pooled[v] {
				pf.releasedBy[v] = fn.Name()
				out = append(out, v)
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		appendVar(sel.X)
	}
	for _, arg := range call.Args {
		appendVar(arg)
	}
	return out
}

// checkNode reports tracked variables used while in the released state.
// State is the set of variables released BEFORE this node, so a releasing
// call's own handle mention is never flagged — unless the variable was
// already released on the path, which is exactly a double release.
// Identifiers being plainly reassigned are kills, not uses.
func (pf *poolFlow) checkNode(n ast.Node, state analysis.FlowSet) {
	skip := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	analysis.InspectNode(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		v, ok := pf.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !pf.pooled[v] || !state.Has(v) {
			return true
		}
		by := pf.releasedBy[v]
		if by == "" {
			by = "its release"
		}
		pf.pass.Reportf(id.Pos(),
			"pooled %s is used after %s may have returned it to the pool; a concurrent Get can be mutating it (PR-8 steered-scratch class)",
			v.Name(), by)
		return true
	})
}

// lhsVar resolves an assignment target identifier to its variable, via
// Defs for := definitions and Uses for plain assignment.
func lhsVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func isBoolType(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}
