package analyzers

import (
	"go/ast"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// AtomicPin enforces the one-Load-per-batch protocol on //pclass:pinned
// atomic pointer fields inside //pclass:pinned functions.
var AtomicPin = &analysis.Analyzer{
	Name:        "atomicpin",
	SuppressKey: "pin",
	Doc: `enforce pin-once discipline on //pclass:pinned atomic.Pointer fields

The serving layer publishes engine hot-swaps through one atomic.Pointer:
correctness under churn depends on each batch pinning that pointer with
exactly one Load and classifying everything against the pinned local. PR
8 shipped the violation: per-worker engine loads let a single scattered
batch span two ruleset versions, which the raced version-window test
caught as decisions outside any committed window.

Inside a function annotated //pclass:pinned, a field annotated
//pclass:pinned (the hot-swap atomic.Pointer) may only be touched as the
receiver of Load(), and a second Load of the same field must not be
reachable from the first — across branches, and through loop back edges,
so a Load inside a per-worker or per-packet loop is flagged even though
it executes "once per iteration". Pin the first Load in a local and pass
that. Re-loading is occasionally the protocol (a loop whose body IS the
batch scope); such a site gets //pclass:allow-pin with a sentence saying
why the window is sound. Store/Swap/CompareAndSwap on the pinned field
belong to the swap path, never to a pinned (reader) function.`,
	Run: runAtomicPin,
}

func runAtomicPin(pass *analysis.Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		if !annotatedFunc(fd, "pinned") {
			return
		}
		checkAtomicPin(pass, fd)
	})
	return nil
}

// checkAtomicPin runs the pin-once flow analysis over one annotated
// function.
func checkAtomicPin(pass *analysis.Pass, fd *ast.FuncDecl) {
	cfg := analysis.BuildCFG(fd.Body)

	// loadSelectors maps each pinned-field selector that is the receiver
	// of a .Load() call to its field key; every other mention of a pinned
	// field is a protocol break reported outright.
	loadSelectors := make(map[*ast.SelectorExpr]string)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			analysis.InspectNode(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
					return true
				}
				if fsel, key, ok := pinnedFieldOperand(pass, sel.X); ok {
					loadSelectors[fsel] = key
				}
				return true
			})
		}
	}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			analysis.InspectNode(n, func(x ast.Node) bool {
				sel, ok := x.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				key, pkg, ok := fieldKey(pass.TypesInfo, sel)
				if !ok || !pass.FactsFor(pkg).HasPinnedField(key) {
					return true
				}
				if _, isLoad := loadSelectors[sel]; !isLoad {
					pass.Reportf(sel.Pos(),
						"//pclass:pinned field %s may only be Load()ed in a //pclass:pinned function; use the pinned local (PR-8 version-window class)", key)
				}
				return false
			})
		}
	}

	// Flow part: a Load reachable from a previous Load of the same field
	// re-opens the version window.
	transfer := func(n ast.Node, state analysis.FlowSet) {
		analysis.InspectNode(n, func(x ast.Node) bool {
			if sel, ok := x.(*ast.SelectorExpr); ok {
				if key, isLoad := loadSelectors[sel]; isLoad {
					state.Add(key)
				}
			}
			return true
		})
	}
	in := analysis.Forward(cfg, nil, transfer)
	analysis.VisitBlocks(cfg, in, transfer, func(_ *analysis.Block, n ast.Node, state analysis.FlowSet) {
		// Walk loads in source order within the node so that two loads in
		// one statement are caught too.
		local := state.Clone()
		analysis.InspectNode(n, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key, isLoad := loadSelectors[sel]
			if !isLoad {
				return true
			}
			if local.Has(key) {
				pass.Reportf(sel.Pos(),
					"pinned field %s is Load()ed again on a path that already pinned it; one batch must land on one engine version (PR-8 version-window class)", key)
			}
			local.Add(key)
			return true
		})
	})
}

// pinnedFieldOperand reports whether expr is a selection of a
// //pclass:pinned field, returning the selector and its fact key.
func pinnedFieldOperand(pass *analysis.Pass, expr ast.Expr) (*ast.SelectorExpr, string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	key, pkg, ok := fieldKey(pass.TypesInfo, sel)
	if !ok || !pass.FactsFor(pkg).HasPinnedField(key) {
		return nil, "", false
	}
	return sel, key, true
}

// annotatedFunc reports whether a function declaration carries the given
// //pclass: annotation.
func annotatedFunc(fd *ast.FuncDecl, name string) bool {
	return facts.Annotated(fd.Doc, name)
}
