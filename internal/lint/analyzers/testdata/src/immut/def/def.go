// Package def declares the immutable-after-build types.
package def

// Expanded mimics ruleset.Expanded: shared by every engine built over
// it, never written after construction.
//
//pclass:immutable
type Expanded struct {
	Entries []int
	Parent  []int
	N       int
}

// Build constructs an Expanded; writes inside the defining package are
// unrestricted.
func Build(n int) *Expanded {
	ex := &Expanded{N: n}
	for i := 0; i < n; i++ {
		ex.Entries = append(ex.Entries, i)
		ex.Parent = append(ex.Parent, 0)
	}
	ex.Entries[0] = 1
	return ex
}
