// Package use consumes def's immutable types from outside.
package use

import "immut/def"

type engine struct {
	ex *def.Expanded
}

func (e *engine) mutate(v int) {
	e.ex.Entries[0] = v             // want `assignment writes field Entries of //pclass:immutable type def\.Expanded`
	e.ex.N = v                      // want `assignment writes field N of //pclass:immutable type def\.Expanded`
	e.ex.Parent[0]++                // want `update writes field Parent of //pclass:immutable type def\.Expanded`
	copy(e.ex.Entries, e.ex.Parent) // want `copy writes field Entries of //pclass:immutable type def\.Expanded`
}

// read-only access and construction are fine.
func (e *engine) read() int {
	ex := def.Build(4)
	return ex.Entries[0] + e.ex.N + len(e.ex.Parent)
}

// detach shows the sanctioned escape: after a copy-on-write clone the
// engine owns the storage it writes.
func (e *engine) detach(v int) {
	owned := &def.Expanded{
		Entries: append([]int(nil), e.ex.Entries...),
		Parent:  e.ex.Parent,
		N:       e.ex.N,
	}
	owned.Entries[0] = v //pclass:allow-mutate private copy-on-write clone
	e.ex = owned
}
