package hotpath

import "fmt"

// Lookup is the annotated fast path: every allocating construct below
// must be flagged.
//
//pclass:hotpath
func Lookup(keys []int) int {
	buf := make([]int, len(keys)) // want `hot path calls make`
	extra := new(int)             // want `hot path calls new`
	buf = append(buf, 1)          // want `hot path calls append`
	fmt.Println(len(buf))         // want `hot path calls fmt\.Println`
	s := "a" + fmt.Sprint(1)      // want `hot path concatenates strings` `hot path calls fmt\.Sprint`
	b := []byte(s)                // want `hot path converts a string to a slice`
	s = string(b)                 // want `hot path converts a slice to string`
	lit := []int{1, 2}            // want `hot path builds a slice literal`
	m := map[int]int{}            // want `hot path builds a map literal`
	p := &pair{}                  // want `hot path takes the address of a composite literal`
	f := func() int { return 0 }  // want `hot path builds a closure`
	go work()                     // want `hot path starts a goroutine`
	return *extra + lit[0] + m[0] + p.a + f() + len(s)
}

// Precompute is not annotated: the same constructs are fine here.
func Precompute(n int) []int {
	out := make([]int, n)
	for i := range out {
		out = append(out[:i], i)
	}
	return out
}

// Checked shows the two sanctioned escapes: a panic's message may
// allocate (the invariant-violation path is already dying), and
// //pclass:allow-alloc suppresses a deliberate cold-start allocation.
//
//pclass:hotpath
func Checked(keys []int, scratch []int) int {
	if len(scratch) < len(keys) {
		panic(fmt.Sprintf("hotpath: scratch %d short of %d", len(scratch), len(keys)))
	}
	if scratch == nil {
		scratch = make([]int, len(keys)) //pclass:allow-alloc cold start, pool miss
	}
	return scratch[0]
}

type pair struct{ a, b int }

func work() {}
