// Package def declares the exhaustively dispatched engine interface and
// engine-kind enum.
package def

// Engine mimics core.Engine: implementations live in other packages, so
// dispatch over it must handle unknown engines.
//
//pclass:exhaustive
type Engine interface {
	Name() string
}

// Kind is a closed engine-kind registry.
//
//pclass:exhaustive
type Kind int

const (
	StrideBV Kind = iota
	TCAM
	Linear
	// numKinds is the unexported sentinel; switches outside this package
	// are not required to cover it.
	numKinds
)

// name switches inside the defining package, so every member counts —
// including the sentinel.
func name(k Kind) string {
	switch k { // want `switch over //pclass:exhaustive enum def\.Kind misses numKinds and has no panicking default case`
	case StrideBV:
		return "stridebv"
	case TCAM:
		return "tcam"
	case Linear:
		return "linear"
	}
	return ""
}

// nameOK covers the miss with a panicking default.
func nameOK(k Kind) string {
	switch k {
	case StrideBV:
		return "stridebv"
	case TCAM:
		return "tcam"
	case Linear:
		return "linear"
	default:
		panic("def: unknown kind")
	}
}

var _ = name
var _ = nameOK
var _ = numKinds
