// Package use dispatches over def's exhaustive interface and enum from
// outside the defining package.
package use

import "exhaust/def"

type fake struct{}

func (fake) Name() string { return "fake" }

// describe has no default arm: an engine added next PR would fall
// through silently.
func describe(e def.Engine) string {
	switch e.(type) { // want `type switch over //pclass:exhaustive interface def\.Engine has no default case`
	case fake:
		return "fake"
	}
	return ""
}

// describeOK carries the required default.
func describeOK(e def.Engine) string {
	switch v := e.(type) {
	case fake:
		return v.Name()
	default:
		panic("use: unknown engine " + e.Name())
	}
}

// width misses an exported member and its default does not panic.
func width(k def.Kind) int {
	switch k {
	case def.StrideBV:
		return 4
	case def.TCAM:
		return 1
	default: // want `default case of a non-exhaustive switch over //pclass:exhaustive enum def\.Kind \(missing Linear\) must panic`
		return 0
	}
}

// widthOK covers every exported member; the unexported sentinel numKinds
// is not required outside the defining package.
func widthOK(k def.Kind) int {
	switch k {
	case def.StrideBV:
		return 4
	case def.TCAM:
		return 1
	case def.Linear:
		return 0
	}
	return -1
}

// widthAllowed is the sanctioned escape.
func widthAllowed(k def.Kind) int {
	//pclass:allow-exhaustive prototype tool, misses are impossible here
	switch k {
	case def.StrideBV:
		return 4
	}
	return 0
}

var _ = describe
var _ = describeOK
var _ = width
var _ = widthOK
var _ = widthAllowed
