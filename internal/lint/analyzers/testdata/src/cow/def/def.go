// Package def declares the copy-on-write storage side of the cowwrite
// fixtures, mirroring internal/stridebv's COW bitvector.
package def

// Vector is a COW word vector: children share Mem and Sum with their
// parent until a mutation detaches the touched region.
type Vector struct {
	// Mem is the copy-on-write word storage.
	//
	//pclass:cow
	Mem []uint64
	// Sum is the summary layer, aliased the same way.
	//
	//pclass:cow
	Sum   []uint64
	owned []bool
}

// SetBit is the blessed mutation point: it detaches the touched word
// before writing.
//
//pclass:cow-mutator
func (v *Vector) SetBit(w int, mask uint64) {
	if !v.owned[w] {
		fresh := make([]uint64, len(v.Mem))
		copy(fresh, v.Mem)
		v.Mem = fresh
		v.owned[w] = true
	}
	v.Mem[w] |= mask
}

// insertBuggy is the pre-fix PR-7 shape verbatim: the write lands in the
// shared word without detaching it first, so mutating a child silently
// edits its COW parent's ruleset.
func (v *Vector) insertBuggy(w int, mask uint64) {
	v.Mem[w] |= mask                   // want `write into //pclass:cow storage Vector.Mem outside a //pclass:cow-mutator`
	v.Sum[w/64] |= 1 << (uint(w) % 64) // want `write into //pclass:cow storage Vector.Sum`
}

// reset replaces the storage headers: pointing the fields at fresh
// storage is the copy-on-write discipline itself, never flagged.
func (v *Vector) reset(n int) {
	v.Mem = make([]uint64, n)
	v.Sum = make([]uint64, (n+63)/64)
}

// Clone returns detached, caller-owned word storage.
func (v *Vector) Clone() []uint64 {
	out := make([]uint64, len(v.Mem))
	copy(out, v.Mem)
	return out
}

// Word is one mutable cell with a mutator method.
type Word struct{ Bits uint64 }

// Set writes through its receiver.
//
//pclass:mutates
func (w *Word) Set(i uint) { w.Bits |= 1 << i }

// Table holds COW row storage of mutable cells.
type Table struct {
	// Rows is COW row storage.
	//
	//pclass:cow
	Rows []Word
}

// initRows builds fresh storage and initializes it; the write is an
// audited escape because nothing can alias storage made two lines up.
func (t *Table) initRows(n int) {
	t.Rows = make([]Word, n)
	for i := range t.Rows {
		//pclass:allow-cow storage freshly made above; no snapshot aliases it yet
		t.Rows[i].Set(0)
	}
}

// Grid holds slice-of-slice COW storage.
type Grid struct {
	// Cells rows are shared with snapshots.
	//
	//pclass:cow
	Cells [][]uint64
}
