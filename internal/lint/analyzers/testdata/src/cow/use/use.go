// Package use reproduces PR-7's aliased COW writes against cow/def's
// cross-package facts, including flow-tracked aliases of the storage.
package use

import "cow/def"

// sweepBuggy: an element write straight through the imported field.
func sweepBuggy(v *def.Vector, mask uint64) {
	v.Mem[0] |= mask // want `write into //pclass:cow storage Vector.Mem`
}

// rowBuggy: the storage leaks into a local sub-slice first; the write
// through the alias is still a write into shared words.
func rowBuggy(v *def.Vector, off, end int, mask uint64) {
	row := v.Mem[off:end]
	row[0] |= mask // want `write into an alias of //pclass:cow storage \(row\)`
}

// branchLeak: the alias is taken on only one path; the may-analysis
// guards the join.
func branchLeak(v *def.Vector, hot bool, mask uint64) {
	w := make([]uint64, 4)
	if hot {
		w = v.Mem
	}
	w[0] |= mask // want `write into an alias of //pclass:cow storage \(w\)`
}

// copyBuggy: copy writes through its destination's backing array even
// without an explicit index.
func copyBuggy(v *def.Vector, src []uint64) {
	copy(v.Sum, src) // want `write into //pclass:cow storage Vector.Sum`
}

// mutateBuggy: a //pclass:mutates method on a cell borrowed from COW
// storage writes into the shared rows.
func mutateBuggy(t *def.Table, r int, i uint) {
	row := &t.Rows[r]
	row.Set(i) // want `write into an alias of //pclass:cow storage \(row\)`
}

// mutateDirect: the same write through the field directly.
func mutateDirect(t *def.Table, r int, i uint) {
	t.Rows[r].Set(i) // want `write into //pclass:cow storage Table.Rows`
}

// rangeBuggy: ranging over slice-of-slice storage hands out element
// aliases through the value variable.
func rangeBuggy(g *def.Grid) {
	for _, row := range g.Cells {
		row[0] = 0 // want `write into an alias of //pclass:cow storage \(row\)`
	}
}

// cloneClean: call results are detached storage; writes are free.
func cloneClean(v *def.Vector) []uint64 {
	fresh := v.Clone()
	fresh[0] = 1
	return fresh
}

// reuseClean: reassignment from a clean source ends the taint.
func reuseClean(v *def.Vector, n int) {
	buf := v.Mem
	buf = make([]uint64, n)
	buf[0] = 1
	_ = buf
}

// setClean: the blessed path routes through the mutator.
func setClean(v *def.Vector, w int, mask uint64) {
	v.SetBit(w, mask)
}
