// Package use reproduces the PR-8 steered-dispatch lifetime bug against
// pool/def's cross-package facts.
package use

import "pool/def"

// dispatchBuggy is the pre-fix PR-8 shape verbatim: the dispatcher drops
// its reference before the send loop, then keeps indexing sc.Tasks while
// a finishing worker may already have recycled the scratch (observed as
// a double-close of the batch's completion channel).
func dispatchBuggy(ch chan def.Task) {
	sc := def.GetScratch()
	sc.CompleteAsync()
	for i := range sc.Tasks { // want `pooled sc is used after CompleteAsync`
		ch <- sc.Tasks[i] // want `pooled sc is used after CompleteAsync`
	}
}

// dispatchFixed is the shipped fix: every read of sc happens before the
// dispatcher's reference is dropped.
func dispatchFixed(ch chan def.Task) {
	sc := def.GetScratch()
	for i := range sc.Tasks {
		ch <- sc.Tasks[i]
	}
	sc.CompleteAsync()
}

// finishParam: parameters of a pooled type are tracked like locals.
func finishParam(sc *def.Scratch) {
	def.Finish(sc)
	_ = sc.Tasks // want `pooled sc is used after Finish`
}

// deferredRelease is the idiomatic clean shape: a deferred release runs
// at function exit and poisons nothing.
func deferredRelease() int {
	sc := def.GetScratch()
	defer sc.Release()
	return len(sc.Tasks)
}

// reacquire: reassigning from a fresh source ends the released state.
func reacquire() {
	sc := def.GetScratch()
	sc.Release()
	sc = def.GetScratch()
	sc.Refs++
	sc.Release()
}

// loopRelease: the release on the Live path reaches both lines below it
// through the loop back edge — including the releasing call itself,
// which is a double release on that path.
func loopRelease(tasks []def.Task, ch chan def.Task) {
	sc := def.GetScratch()
	for i := range tasks {
		if tasks[i].Live {
			sc.CompleteAsync() // want `pooled sc is used after CompleteAsync`
			continue
		}
		ch <- sc.Tasks[i] // want `pooled sc is used after CompleteAsync`
	}
}

// audited: the allow escape silences an audited finding.
func audited() {
	sc := def.GetScratch()
	sc.CompleteAsync()
	//pclass:allow-pooled the batch holds a reference for the duration of this read in the real code
	_ = sc.Refs
}
