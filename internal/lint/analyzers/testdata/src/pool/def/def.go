// Package def declares the pooled-scratch side of the poollifetime
// fixtures — the //pclass:pooled type and getter and the
// //pclass:releases calls — mirroring internal/serve's steered scratch.
package def

import "sync"

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Scratch is the per-batch steered scratch; every value is pool-managed.
//
//pclass:pooled
type Scratch struct {
	Tasks []Task
	Refs  int
}

// Task is one steered unit of work.
type Task struct {
	N    int
	Live bool
}

// GetScratch hands out a pooled scratch.
//
//pclass:pooled
func GetScratch() *Scratch {
	return scratchPool.Get().(*Scratch)
}

// Release returns sc to the pool immediately.
//
//pclass:releases
func (sc *Scratch) Release() {
	scratchPool.Put(sc)
}

// CompleteAsync drops the caller's reference; the last holder to finish
// recycles the scratch.
//
//pclass:releases
func (sc *Scratch) CompleteAsync() {
	sc.Refs--
	if sc.Refs == 0 {
		sc.Release()
	}
}

// Finish drains and releases a worker-held scratch.
//
//pclass:releases
func Finish(sc *Scratch) {
	sc.Refs--
}

// rawPool uses sync.Pool directly: Get and Put are pooled-source and
// release calls even without annotations.
func rawPool() {
	sc := scratchPool.Get().(*Scratch)
	scratchPool.Put(sc)
	sc.Refs = 0 // want `pooled sc is used after Put may have returned it to the pool`
}

// doubleRelease releases twice: the second release is itself a use of a
// released handle.
func doubleRelease() {
	sc := GetScratch()
	sc.Release()
	sc.Release() // want `pooled sc is used after Release may have returned it to the pool`
}
