package locksafe

import "sync"

type shard struct {
	mu      sync.Mutex
	entries []int
}

type cache struct {
	shards []shard
}

type counters struct {
	hits int
	mu   sync.RWMutex
}

// byValue passes a lock-bearing struct by value.
func byValue(s shard) int { // want `passes .*shard by value; it contains sync\.Mutex`
	return len(s.entries)
}

// valueReturn returns a lock-bearing struct by value.
func valueReturn() counters { // want `passes counters by value; it contains sync\.RWMutex`
	return counters{}
}

// copies dereferences and ranges over lock-bearing values.
func copies(c *cache, s *shard) {
	local := *s // want `assignment copies a value containing sync\.Mutex`
	_ = local
	for _, sh := range c.shards { // want `range value copies a value containing sync\.Mutex`
		_ = sh
	}
	for i := range c.shards { // ranging by index is the fix
		c.shards[i].mu.Lock()
		c.shards[i].mu.Unlock()
	}
}

// deferLoop holds every shard's lock until function return.
func deferLoop(c *cache) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		defer s.mu.Unlock() // want `defer s\.mu\.Unlock\(\) inside a loop`
	}
}

func classify(v int) int      { return v }
func classifyBatch(v int) int { return v }

// lockedClassify calls the engine while holding a shard lock.
func lockedClassify(s *shard) int {
	s.mu.Lock()
	r := classify(1) // want `calls classify while holding lock s\.mu`
	s.mu.Unlock()
	r += classify(2) // after the unlock: fine
	return r
}

// deferredClassify holds the lock for the whole function body.
func deferredClassify(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return classifyBatch(3) // want `calls classifyBatch while holding lock s\.mu`
}

// branchClassify takes the lock inside one branch only.
func branchClassify(s *shard, b bool) int {
	if b {
		s.mu.Lock()
		s.mu.Unlock()
	}
	return classify(4) // lock released in every path: fine
}

// allowListed is the sanctioned escape for a deliberate call under lock.
func allowListed(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return classify(5) //pclass:allow-lock single-threaded rebuild path
}
