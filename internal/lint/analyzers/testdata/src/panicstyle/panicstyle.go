package panicstyle

import (
	"errors"
	"fmt"
)

const prefix = "panicstyle: bad state: "

func good(n int) {
	if n < 0 {
		panic("panicstyle: negative length")
	}
	if n == 1 {
		panic(fmt.Sprintf("panicstyle: odd length %d", n))
	}
	if n == 2 {
		panic(prefix + errors.New("two").Error())
	}
	if n == 3 {
		panic("panicstyle: " + fmt.Sprint(n))
	}
}

func bad(n int, err error) {
	if err != nil {
		panic(err) // want `panic message must be a constant-prefixed "panicstyle: " string`
	}
	if n < 0 {
		panic("negative length") // want `panic message must be a constant-prefixed "panicstyle: " string`
	}
	if n == 1 {
		panic(fmt.Sprintf("odd length %d", n)) // want `panic message must be a constant-prefixed "panicstyle: " string`
	}
	if n == 2 {
		panic(errors.New("panicstyle: boxed").Error() + "x") // want `panic message must be a constant-prefixed "panicstyle: " string`
	}
}

// allowListed is the sanctioned escape for a deliberately bare panic.
func allowListed(err error) {
	if err != nil {
		panic(err) //pclass:allow-panic rethrow in recover-based control flow
	}
}
