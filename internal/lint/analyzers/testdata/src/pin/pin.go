// Package pin reproduces the PR-8 version-window bug for the atomicpin
// analyzer: batches must pin the hot-swap engine pointer with exactly
// one Load.
package pin

import "sync/atomic"

type engine struct{ gen uint64 }

type server struct {
	// engine is the hot-swap pointer every batch pins exactly once.
	//
	//pclass:pinned
	engine atomic.Pointer[engine]
	out    []uint64
}

type packet struct{ n int }

// dispatchFixed is the shipped fix: one Load pins one engine version for
// the whole batch.
//
//pclass:pinned
func (s *server) dispatchFixed(batch []packet) {
	eng := s.engine.Load()
	for i := range batch {
		s.out[i] = eng.gen
	}
}

// dispatchBuggy is the pre-fix PR-8 shape verbatim: each packet re-loads
// the pointer, so a batch racing a hot swap spans two ruleset versions.
//
//pclass:pinned
func (s *server) dispatchBuggy(batch []packet) {
	for i := range batch {
		eng := s.engine.Load() // want `pinned field server.engine is Load\(\)ed again on a path that already pinned it`
		s.out[i] = eng.gen
	}
}

// reload: a straight-line second Load re-opens the window too.
//
//pclass:pinned
func (s *server) reload() {
	a := s.engine.Load()
	_ = a
	b := s.engine.Load() // want `pinned field server.engine is Load\(\)ed again`
	_ = b
}

// branchy: both branches pin; the join knows the window is already open.
//
//pclass:pinned
func (s *server) branchy(cold bool) {
	var eng *engine
	if cold {
		eng = s.engine.Load()
	} else {
		eng = s.engine.Load()
	}
	_ = eng
	again := s.engine.Load() // want `pinned field server.engine is Load\(\)ed again`
	_ = again
}

// storeInReader: anything but Load on the pinned field inside a pinned
// function belongs to the swap path, not the read path.
//
//pclass:pinned
func (s *server) storeInReader(e *engine) {
	s.engine.Store(e) // want `field server.engine may only be Load\(\)ed in a //pclass:pinned function`
}

// swapPath is not annotated //pclass:pinned: the hot-swap side loads and
// stores freely.
func (s *server) swapPath(e *engine) {
	s.engine.Store(e)
	_ = s.engine.Load()
	_ = s.engine.Load()
}

// drain is the audited escape shape from internal/serve's worker loop:
// one load per drained batch, because the loop body IS the batch scope.
//
//pclass:pinned
func (s *server) drain(batches [][]packet) {
	for _, batch := range batches {
		//pclass:allow-pin one load per drained batch; the loop body is the batch scope
		eng := s.engine.Load()
		for i := range batch {
			s.out[i] = eng.gen
		}
	}
}
