package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pktclass/internal/lint/analysis"
)

// ExhaustEngine enforces exhaustive dispatch over annotated engine
// interfaces and enum types.
var ExhaustEngine = &analysis.Analyzer{
	Name:        "exhaustengine",
	SuppressKey: "exhaustive",
	Doc: `require exhaustive switches over //pclass:exhaustive interfaces and enums

Engine dispatch is open (core.Engine implementations live in several
packages), so a type switch over a //pclass:exhaustive interface must
carry a default case — silently classifying an unknown engine as
nothing is how a new engine ships half-wired. A switch over a
//pclass:exhaustive constant enum type (ruleset.Profile,
fpga.MemoryKind, stride-width style registries) must either cover every
member — only the exported members when switching outside the defining
package — or carry a default case that panics. Suppress with
//pclass:allow-exhaustive.`,
	Run: runExhaustEngine,
}

func runExhaustEngine(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, x)
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, x)
			}
			return true
		})
	}
	return nil
}

// typeSwitchSubject extracts the expression whose type drives a type
// switch (from "v.(type)" in either statement form).
func typeSwitchSubject(st *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := st.Assign.(type) {
	case *ast.ExprStmt:
		e = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			e = a.Rhs[0]
		}
	}
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return nil
}

func checkTypeSwitch(pass *analysis.Pass, st *ast.TypeSwitchStmt) {
	subj := typeSwitchSubject(st)
	if subj == nil {
		return
	}
	named, ok := types.Unalias(pass.TypesInfo.TypeOf(subj)).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pass.FactsFor(obj.Pkg()).HasExhaustiveIface(obj.Name()) {
		return
	}
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return // has a default case
		}
	}
	pass.Reportf(st.Pos(),
		"type switch over //pclass:exhaustive interface %s.%s has no default case for unknown implementations",
		obj.Pkg().Name(), obj.Name())
}

func checkEnumSwitch(pass *analysis.Pass, st *ast.SwitchStmt) {
	if st.Tag == nil {
		return
	}
	named, ok := types.Unalias(pass.TypesInfo.TypeOf(st.Tag)).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	members := pass.FactsFor(obj.Pkg()).EnumMembers(obj.Name())
	if members == nil {
		return
	}
	samePkg := obj.Pkg().Path() == pass.Pkg.Path()

	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !samePkg && !m.Exported {
			continue
		}
		if !covered[m.Value] {
			missing = append(missing, m.Name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	enum := fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
	if defaultClause == nil {
		pass.Reportf(st.Pos(),
			"switch over //pclass:exhaustive enum %s misses %s and has no panicking default case",
			enum, strings.Join(missing, ", "))
		return
	}
	if !bodyPanics(pass, defaultClause.Body) {
		pass.Reportf(defaultClause.Pos(),
			"default case of a non-exhaustive switch over //pclass:exhaustive enum %s (missing %s) must panic",
			enum, strings.Join(missing, ", "))
	}
}

// bodyPanics reports whether a statement list contains a panic call
// (outside nested function literals).
func bodyPanics(pass *analysis.Pass, stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isBuiltin(pass.TypesInfo, call.Fun, "panic") {
				found = true
			}
			return !found
		})
	}
	return found
}
