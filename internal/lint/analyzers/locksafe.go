package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"pktclass/internal/lint/analysis"
)

// LockSafe enforces the per-shard lock discipline of the serving stack.
var LockSafe = &analysis.Analyzer{
	Name:        "locksafe",
	SuppressKey: "lock",
	Doc: `enforce lock discipline: no lock-holding copies, no engine calls under a shard lock, no deferred unlocks in loops

Three checks. (1) Values whose type transitively contains a sync lock or
a sync/atomic value must not be copied: by-value parameters, receivers
and results, pointer-dereference assignments, and range-value copies are
flagged (a wider net than vet's copylocks, which only sees Lock methods).
(2) Between a mu.Lock() and its mu.Unlock() — or for the rest of the
function after a defer mu.Unlock() — calls into classification
(Classify*, classify*, MultiMatch) are flagged: the flowcache batch
design keeps the engine's full lookup outside every shard critical
section, and a call back into an engine while a shard lock is held is
how lock-order inversions and tail-latency cliffs start. (3) defer
mu.Unlock() inside a loop is flagged: the unlock runs at function
return, not loop-iteration end. Suppress with //pclass:allow-lock.`,
	Run: runLockSafe,
}

func runLockSafe(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fd.Recv, fd.Type)
			if fd.Body != nil {
				checkValueCopies(pass, fd.Body)
				checkDeferInLoop(pass, fd.Body, 0)
				checkHeldRegions(pass, fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// --- check 1: copies of lock-bearing values ---

// checkLockCopies flags by-value receivers, parameters and results whose
// type contains a lock or atomic.
func checkLockCopies(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if name, ok := containsLock(t); ok {
				pass.Reportf(field.Type.Pos(), "passes %s by value; it contains %s", types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
			}
		}
	}
}

// checkValueCopies flags assignments that copy a lock-bearing value out
// of existing storage (dereference or variable copy) and range statements
// whose value variable copies one per iteration.
func checkValueCopies(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				// Discarding into _ copies nothing.
				if len(x.Lhs) == len(x.Rhs) {
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if copiesLockedValue(pass, rhs) {
					name, _ := containsLock(pass.TypesInfo.TypeOf(rhs))
					pass.Reportf(rhs.Pos(), "assignment copies a value containing %s", name)
				}
			}
		case *ast.RangeStmt:
			if x.Value != nil {
				if name, ok := containsLock(pass.TypesInfo.TypeOf(x.Value)); ok {
					pass.Reportf(x.Value.Pos(), "range value copies a value containing %s each iteration; range over indices or pointers instead", name)
				}
			}
		}
		return true
	})
}

// copiesLockedValue reports whether rhs reads an existing lock-bearing
// value by value. Composite literals and calls construct fresh values and
// are not copies of shared state.
func copiesLockedValue(pass *analysis.Pass, rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	_, ok := containsLock(pass.TypesInfo.TypeOf(rhs))
	return ok
}

// containsLock reports whether t (without following pointers, slices,
// maps or channels) contains a sync lock or sync/atomic value, naming the
// first one found.
func containsLock(t types.Type) (string, bool) {
	return findLock(t, make(map[types.Type]bool))
}

func findLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + obj.Name(), true
				}
			case "sync/atomic":
				// Every sync/atomic type is copy-hostile.
				return "atomic." + obj.Name(), true
			}
		}
		return findLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := findLock(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return findLock(u.Elem(), seen)
	}
	return "", false
}

// --- check 2: classification calls inside lock critical sections ---

// checkHeldRegions walks a statement list tracking which mutex
// expressions are held, recursing into nested control flow with a copy of
// the held set.
func checkHeldRegions(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if lock, name, ok := lockCall(pass, s.X); ok {
				switch name {
				case "Lock", "RLock":
					held[lock] = true
				case "Unlock", "RUnlock":
					delete(held, lock)
				}
				continue
			}
		case *ast.DeferStmt:
			if lock, name, ok := lockCall(pass, s.Call); ok && (name == "Unlock" || name == "RUnlock") {
				// Held until function return; treat the rest of this
				// statement list as a critical section.
				held[lock] = true
				continue
			}
		}
		if len(held) > 0 {
			reportClassifyCalls(pass, stmt, held)
		}
		// Recurse into nested blocks with an independent copy: a lock taken
		// inside a branch does not stay held after it.
		for _, body := range nestedStmtLists(stmt) {
			checkHeldRegions(pass, body, copyHeld(held))
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// nestedStmtLists returns the statement lists nested directly inside one
// statement (if/else bodies, loop bodies, switch clauses, select comms).
func nestedStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}

// lockCall matches expr as a Lock/Unlock/RLock/RUnlock method call on a
// sync.Mutex or sync.RWMutex value, returning the printed receiver
// expression as the lock's identity.
func lockCall(pass *analysis.Pass, expr ast.Expr) (lock, method string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if name, isLock := containsLock(pass.TypesInfo.TypeOf(sel.X)); !isLock || !strings.HasPrefix(name, "sync.") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// reportClassifyCalls flags classification calls anywhere inside stmt,
// without descending into function literals (they run later, not under
// the lock) or nested statement lists (handled by the caller's recursion
// with the correct held set).
func reportClassifyCalls(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.CallExpr:
			if name, ok := calleeName(x); ok && isClassifyName(name) {
				for lock := range held {
					pass.Reportf(x.Pos(), "calls %s while holding lock %s; classification must run outside shard critical sections", name, lock)
					break
				}
			}
		}
		return true
	})
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	}
	return "", false
}

// isClassifyName matches the classification entry points the lock
// discipline protects: Classify, ClassifyBatch(...), classifyMisses-style
// helpers, and MultiMatch.
func isClassifyName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "classify") || name == "MultiMatch"
}

// --- check 3: deferred unlocks inside loops ---

func checkDeferInLoop(pass *analysis.Pass, n ast.Node, loopDepth int) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.ForStmt:
			checkDeferInLoop(pass, x.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			checkDeferInLoop(pass, x.Body, loopDepth+1)
			return false
		case *ast.FuncLit:
			// A new function scope resets the loop depth: defers in a
			// closure run at the closure's return.
			checkDeferInLoop(pass, x.Body, 0)
			return false
		case *ast.DeferStmt:
			if loopDepth > 0 {
				if lock, name, ok := lockCall(pass, x.Call); ok && (name == "Unlock" || name == "RUnlock") {
					pass.Reportf(x.Pos(), "defer %s.%s() inside a loop releases the lock at function return, not at iteration end", lock, name)
				}
			}
		}
		return true
	})
}
