package analyzers

import (
	"go/ast"
	"go/constant"
	"strings"

	"pktclass/internal/lint/analysis"
)

// PanicStyle enforces the "<pkg>: ..." constant-prefix convention on
// panic messages.
var PanicStyle = &analysis.Analyzer{
	Name:        "panicstyle",
	SuppressKey: "panic",
	Doc: `require panic messages to carry a constant "<pkg>: " prefix

A panic that escapes the classification stack is read in a goroutine
dump, far from its source; every panic message must therefore identify
its package with a constant prefix — panic("bitvec: ..."), a
fmt.Sprintf whose format literal carries the prefix, or a constant
concatenation whose leftmost operand does. Bare panic(err) is the
canonical violation. Test files and package main are exempt. Suppress
with //pclass:allow-panic.`,
	Run: runPanicStyle,
}

func runPanicStyle(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	want := pass.Pkg.Name() + ": "
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(pass.TypesInfo, call.Fun, "panic") || len(call.Args) != 1 {
				return true
			}
			if !panicMsgOK(pass, call.Args[0], want) {
				pass.Reportf(call.Pos(), "panic message must be a constant-prefixed %q string", want)
			}
			return true
		})
	}
	return nil
}

// panicMsgOK reports whether the panic argument resolves to a message
// whose constant leading text starts with want.
func panicMsgOK(pass *analysis.Pass, arg ast.Expr, want string) bool {
	arg = ast.Unparen(arg)
	// Any constant string expression (literal, named constant, constant
	// concatenation) is judged by its value.
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), want)
	}
	switch x := arg.(type) {
	case *ast.BinaryExpr:
		// "pkg: context: " + err.Error() — the leftmost operand carries
		// the prefix.
		return panicMsgOK(pass, x.X, want)
	case *ast.CallExpr:
		// fmt.Sprintf/Errorf("pkg: ...", args...) and equivalents: the
		// format (or first) argument carries the prefix.
		if name, ok := pkgFuncName(pass.TypesInfo, x.Fun, "fmt"); ok && len(x.Args) > 0 {
			switch name {
			case "Sprintf", "Errorf", "Sprint", "Sprintln":
				return panicMsgOK(pass, x.Args[0], want)
			}
		}
	}
	return false
}
