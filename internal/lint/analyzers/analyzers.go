package analyzers

import "pktclass/internal/lint/analysis"

// All returns every pclasslint analyzer in the order findings are
// reported.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc,
		Immutability,
		LockSafe,
		PanicStyle,
		ExhaustEngine,
		PoolLifetime,
		AtomicPin,
		CowWrite,
	}
}
