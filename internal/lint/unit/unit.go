// Package unit implements the go vet -vettool driver protocol (the
// "unitchecker" protocol of golang.org/x/tools, reimplemented on the
// standard library so the repository stays dependency-free).
//
// The go command invokes the vettool three ways:
//
//   - pclasslint -V=full        → print a version line hashing the binary,
//     used as the tool's build-cache identity
//   - pclasslint -flags         → print the tool's analyzer flags as JSON
//     (the go command forwards only flags named here, which is how
//     "go vet -vettool=… -json" reaches the tool)
//   - pclasslint <unit>.cfg     → analyze one compilation unit described
//     by the JSON config: parse its Go files, typecheck against the
//     export data of its dependencies, run the analyzers, exchange facts
//     through .vetx files, and print findings to stderr (non-zero exit)
//     or — under -json — as a machine-readable tree on stdout (exit 0;
//     the diagnostics are the output, not an error)
//
// Units outside the module under lint (the standard library and any
// other dependency go vet walks for facts) are skipped with empty facts:
// pclasslint's invariants are this repository's conventions.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"

	"pktclass/internal/lint/analysis"
	"pktclass/internal/lint/facts"
)

// config is the JSON compilation-unit description the go command writes
// for each vet action (unexported fields of the x/tools unitchecker
// Config it mirrors are omitted; unknown JSON fields are ignored).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the vettool entry point. modulePath scopes analysis: units
// whose import path is outside the module produce empty facts and no
// findings.
func Main(modulePath string, analyzers []*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("pclasslint: ")
	flag.Var(versionFlag{}, "V", "print version and exit")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON and exit")
	jsonMode := flag.Bool("json", false, "emit diagnostics as JSON on stdout, keyed by package then analyzer")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: go vet -vettool=$(which pclasslint) [package]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
		}
		os.Exit(2)
	}
	flag.Parse()
	if *printFlags {
		// The go command forwards a "go vet" flag to the tool only if this
		// list names it; -json is the one tool flag pclasslint accepts.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		data, err := json.MarshalIndent([]jsonFlag{
			{Name: "json", Bool: true, Usage: "emit diagnostics as JSON on stdout, keyed by package then analyzer"},
		}, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}
	res, err := run(args[0], modulePath, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonMode {
		fmt.Println(string(res.JSON()))
		return // diagnostics are the output, not an error: exit 0
	}
	if len(res.findings) > 0 {
		for _, f := range res.findings {
			fmt.Fprintf(os.Stderr, "%s: %s\n", res.fset.Position(f.diag.Pos), f.diag.Message)
		}
		os.Exit(2)
	}
}

// finding is one diagnostic tagged with the analyzer that produced it
// (plain output drops the tag; -json keys on it).
type finding struct {
	analyzer string
	diag     analysis.Diagnostic
}

// unitResult is everything Main needs to render one unit's findings in
// either output mode.
type unitResult struct {
	importPath string
	fset       *token.FileSet
	findings   []finding
}

// jsonDiagnostic is the wire form of one finding under -json, matching
// the x/tools unitchecker schema (posn is "file:line:col") so existing
// consumers — editors, the CI problem matcher's JSON cousin — can parse
// pclasslint output without a special case.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// JSON renders the unit's findings as the unitchecker JSON tree:
//
//	{"import/path": {"analyzer": [{"posn": "file:line:col", "message": …}]}}
//
// A clean unit renders as {} — still valid JSON, so stream consumers
// need no empty-output special case.
func (r *unitResult) JSON() []byte {
	tree := make(map[string]map[string][]jsonDiagnostic)
	for _, f := range r.findings {
		byAnalyzer := tree[r.importPath]
		if byAnalyzer == nil {
			byAnalyzer = make(map[string][]jsonDiagnostic)
			tree[r.importPath] = byAnalyzer
		}
		byAnalyzer[f.analyzer] = append(byAnalyzer[f.analyzer], jsonDiagnostic{
			Posn:    r.fset.Position(f.diag.Pos).String(),
			Message: f.diag.Message,
		})
	}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Fatal(err) // diagnostics are plain strings; cannot fail
	}
	return data
}

// versionFlag handles -V=full exactly like x/tools' unitchecker: the go
// command parses the "<name> version <vers>" line and folds the binary
// hash into its action cache key.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() interface{} { return nil }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	// This replicates the minimal subset of cmd/internal/objabi's
	// AddVersionFlag the go command requires of a vet tool.
	progname := os.Args[0]
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)[:12]))
	os.Exit(0)
	return nil
}

// run analyzes one compilation unit and returns its findings.
func run(cfgFile, modulePath string, analyzers []*analysis.Analyzer) (*unitResult, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	res := &unitResult{importPath: cfg.ImportPath}

	if !inModule(cfg.ImportPath, modulePath) {
		// Out-of-module dependency: no conventions to check, no facts to
		// export. Write the (empty) facts file the go command expects.
		return res, writeVetx(cfg, &facts.Package{})
	}

	fset := token.NewFileSet()
	res.fset = fset
	var files []*ast.File
	var parseErr error
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil && parseErr == nil {
			parseErr = err
		}
		if f != nil {
			files = append(files, f)
		}
	}

	pkg, info, typeErr := typecheck(fset, cfg, files)
	if parseErr != nil || typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return res, writeVetx(cfg, &facts.Package{})
		}
		if parseErr != nil {
			return nil, parseErr
		}
		return nil, typeErr
	}

	own := facts.Scan(files, pkg, info)
	if err := writeVetx(cfg, own); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		// Facts-gathering pass for a dependency: findings are reported
		// when the unit is analyzed as a root.
		return res, nil
	}

	deps := newDepFacts(cfg)
	sup := analysis.BuildSuppressions(fset, files)
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     own,
			DepFacts:  deps.get,
			Report: func(d analysis.Diagnostic) {
				if !sup.Suppressed(fset.Position(d.Pos), a.SuppressKey) {
					res.findings = append(res.findings, finding{analyzer: a.Name, diag: d})
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(res.findings, func(i, j int) bool { return res.findings[i].diag.Pos < res.findings[j].diag.Pos })
	return res, nil
}

// inModule reports whether a unit import path (possibly a test variant
// like "mod/pkg [mod/pkg.test]" or "mod/pkg_test") belongs to the
// module.
func inModule(importPath, modulePath string) bool {
	if modulePath == "" {
		return true
	}
	p, _, _ := strings.Cut(importPath, " ")
	return p == modulePath ||
		strings.HasPrefix(p, modulePath+"/") ||
		strings.HasPrefix(p, modulePath+".") ||
		strings.HasPrefix(p, modulePath+"_test")
}

// goVersionRE matches the language versions go/types accepts.
var goVersionRE = regexp.MustCompile(`^go[0-9]+\.[0-9]+(\.[0-9]+)?$`)

// typecheck checks the unit against the export data of its dependencies,
// resolving import paths through the unit's ImportMap.
func typecheck(fset *token.FileSet, cfg *config, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	goVersion := cfg.GoVersion
	if !goVersionRE.MatchString(goVersion) {
		goVersion = ""
	}
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, arch),
		GoVersion: goVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// depFacts lazily decodes dependency .vetx files, indexed by canonical
// import path (test-variant suffixes stripped).
type depFacts struct {
	paths map[string]string
	cache map[string]*facts.Package
}

func newDepFacts(cfg *config) *depFacts {
	d := &depFacts{
		paths: make(map[string]string, len(cfg.PackageVetx)),
		cache: make(map[string]*facts.Package),
	}
	for path, file := range cfg.PackageVetx {
		p, _, _ := strings.Cut(path, " ")
		d.paths[p] = file
	}
	return d
}

func (d *depFacts) get(path string) *facts.Package {
	if fs, ok := d.cache[path]; ok {
		return fs
	}
	var fs *facts.Package
	if file, ok := d.paths[path]; ok {
		if data, err := os.ReadFile(file); err == nil {
			fs, _ = facts.Decode(data)
		}
	}
	d.cache[path] = fs
	return fs
}

// writeVetx stores the unit's facts where the go command asked for them.
func writeVetx(cfg *config, fs *facts.Package) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := fs.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}
