package unit

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"pktclass/internal/lint/analysis"
)

// fakeResult builds a unitResult whose positions resolve inside one
// synthetic file, with one finding per (analyzer, line) pair.
func fakeResult(importPath string, findings ...[2]string) *unitResult {
	fset := token.NewFileSet()
	f := fset.AddFile("probe.go", -1, 1000)
	for i := 0; i < 1000; i++ {
		if i%10 == 0 {
			f.AddLine(i)
		}
	}
	r := &unitResult{importPath: importPath, fset: fset}
	for i, fa := range findings {
		r.findings = append(r.findings, finding{
			analyzer: fa[0],
			diag:     analysis.Diagnostic{Pos: f.Pos(10 * (i + 1)), Message: fa[1]},
		})
	}
	return r
}

func TestJSONEmptyUnit(t *testing.T) {
	got := string(fakeResult("pktclass/internal/bitvec").JSON())
	if got != "{}" {
		t.Fatalf("clean unit JSON = %q, want {}", got)
	}
}

func TestJSONTreeShape(t *testing.T) {
	r := fakeResult("pktclass/internal/serve",
		[2]string{"poollifetime", "pooled sc is used after release"},
		[2]string{"atomicpin", "pinned field loaded twice"},
		[2]string{"poollifetime", "pooled t is used after finish"},
	)
	var tree map[string]map[string][]jsonDiagnostic
	if err := json.Unmarshal(r.JSON(), &tree); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	byAnalyzer, ok := tree["pktclass/internal/serve"]
	if !ok {
		t.Fatalf("tree keys = %v, want the unit import path", tree)
	}
	if n := len(byAnalyzer["poollifetime"]); n != 2 {
		t.Errorf("poollifetime findings = %d, want 2", n)
	}
	if n := len(byAnalyzer["atomicpin"]); n != 1 {
		t.Errorf("atomicpin findings = %d, want 1", n)
	}
	d := byAnalyzer["atomicpin"][0]
	if d.Message != "pinned field loaded twice" {
		t.Errorf("message = %q", d.Message)
	}
	// posn must be file:line:col — the shape editors and the problem
	// matcher grammar agree on.
	parts := strings.Split(d.Posn, ":")
	if len(parts) != 3 || parts[0] != "probe.go" {
		t.Errorf("posn = %q, want probe.go:line:col", d.Posn)
	}
}

func TestInModule(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"pktclass", true},
		{"pktclass/internal/serve", true},
		{"pktclass/internal/serve [pktclass/internal/serve.test]", true},
		{"pktclass/internal/serve_test [pktclass/internal/serve.test]", true},
		{"pktclass.test", true},
		{"fmt", false},
		{"golang.org/x/tools", false},
	}
	for _, c := range cases {
		if got := inModule(c.path, "pktclass"); got != c.want {
			t.Errorf("inModule(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
