package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 2048} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if v.Ones() != 0 {
			t.Fatalf("new vector of %d bits has %d ones", n, v.Ones())
		}
		if !v.IsZero() {
			t.Fatalf("new vector of %d bits not zero", n)
		}
		if got := v.FirstSet(); got != -1 {
			t.Fatalf("FirstSet on zero vector = %d, want -1", got)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	v.SetTo(4, false)
	if !v.Get(3) || v.Get(4) {
		t.Fatalf("SetTo wrong: %s", v)
	}
	v.SetTo(3, false)
	if v.Get(3) {
		t.Fatal("SetTo(3,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(64)
	for _, i := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestSetAllMasksTail(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 100} {
		v := New(n)
		v.SetAll()
		if v.Ones() != n {
			t.Fatalf("n=%d: SetAll Ones = %d", n, v.Ones())
		}
		if v.FirstSet() != 0 {
			t.Fatalf("n=%d: FirstSet after SetAll = %d", n, v.FirstSet())
		}
	}
}

func TestNewOnes(t *testing.T) {
	v := NewOnes(77)
	if v.Ones() != 77 {
		t.Fatalf("NewOnes(77).Ones() = %d", v.Ones())
	}
	// Identity for And.
	r := randVector(77, rand.New(rand.NewSource(1)))
	if !r.And(v).Equal(r) {
		t.Fatal("And with all-ones changed vector")
	}
}

func TestClearAll(t *testing.T) {
	v := NewOnes(100)
	v.ClearAll()
	if !v.IsZero() {
		t.Fatal("ClearAll left bits set")
	}
}

func randVector(n int, rng *rand.Rand) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestAndSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := randVector(n, rng), randVector(n, rng)
		c := a.And(b)
		for i := 0; i < n; i++ {
			want := a.Get(i) && b.Get(i)
			if c.Get(i) != want {
				t.Fatalf("n=%d bit %d: got %v want %v", n, i, c.Get(i), want)
			}
		}
	}
}

func TestAndIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randVector(200, rng), randVector(200, rng)
	want := a.And(b)
	got := a.Clone()
	got.AndInto(b, got) // dst aliases receiver
	if !got.Equal(want) {
		t.Fatal("AndInto with aliased dst differs from And")
	}
	got2 := a.Clone()
	got2.AndWith(b)
	if !got2.Equal(want) {
		t.Fatal("AndWith differs from And")
	}
}

func TestOrNotSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 130
	a, b := randVector(n, rng), randVector(n, rng)
	or := a.Or(b)
	not := a.Not()
	for i := 0; i < n; i++ {
		if or.Get(i) != (a.Get(i) || b.Get(i)) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if not.Get(i) != !a.Get(i) {
			t.Fatalf("Not bit %d wrong", i)
		}
	}
	if not.Ones()+a.Ones() != n {
		t.Fatalf("Not tail mask broken: %d + %d != %d", not.Ones(), a.Ones(), n)
	}
	c := a.Clone()
	c.OrWith(b)
	if !c.Equal(or) {
		t.Fatal("OrWith differs from Or")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestFirstSetMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		v := New(n)
		// Sparse fill so FirstSet varies across word boundaries.
		for i := 0; i < n; i++ {
			if rng.Intn(50) == 0 {
				v.Set(i)
			}
		}
		naive := -1
		for i := 0; i < n; i++ {
			if v.Get(i) {
				naive = i
				break
			}
		}
		if got := v.FirstSet(); got != naive {
			t.Fatalf("FirstSet = %d, naive = %d (v=%s)", got, naive, v)
		}
	}
}

func TestNextSet(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 5, 63, 64, 130, 199} {
		v.Set(i)
	}
	want := []int{0, 5, 63, 64, 130, 199}
	got := []int{}
	for i := v.NextSet(0); i != -1; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	if v.NextSet(-5) != 0 {
		t.Fatal("NextSet(-5) != 0")
	}
	if v.NextSet(200) != -1 {
		t.Fatal("NextSet(200) != -1")
	}
	if v.NextSet(131) != 199 {
		t.Fatalf("NextSet(131) = %d", v.NextSet(131))
	}
}

func TestSetBitsMultiMatchOrder(t *testing.T) {
	v := New(300)
	idx := []int{7, 64, 65, 128, 255, 299}
	for _, i := range idx {
		v.Set(i)
	}
	got := v.SetBits()
	if len(got) != len(idx) {
		t.Fatalf("SetBits = %v", got)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("SetBits = %v, want %v", got, idx)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		v := randVector(1+rng.Intn(150), rng)
		back, err := FromString(v.String())
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(v) {
			t.Fatalf("round trip failed: %s != %s", back, v)
		}
	}
	if _, err := FromString("01x"); err == nil {
		t.Fatal("FromString accepted invalid character")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewOnes(70)
	b := a.Clone()
	b.Clear(0)
	if !a.Get(0) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("two zero vectors unequal")
	}
	b.Set(64)
	if a.Equal(b) {
		t.Fatal("different vectors equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lengths equal")
	}
}

// quickVec adapts Vector generation for testing/quick via a word seed.
type quickVec struct {
	Seed int64
	N    uint16
}

func (q quickVec) vector() Vector {
	n := int(q.N%1024) + 1
	return randVector(n, rand.New(rand.NewSource(q.Seed)))
}

func TestQuickAndCommutative(t *testing.T) {
	f := func(q quickVec, seed2 int64) bool {
		a := q.vector()
		b := randVector(a.Len(), rand.New(rand.NewSource(seed2)))
		return a.And(b).Equal(b.And(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndAssociativeIdempotent(t *testing.T) {
	f := func(q quickVec, s2, s3 int64) bool {
		a := q.vector()
		rng2 := rand.New(rand.NewSource(s2))
		rng3 := rand.New(rand.NewSource(s3))
		b := randVector(a.Len(), rng2)
		c := randVector(a.Len(), rng3)
		assoc := a.And(b).And(c).Equal(a.And(b.And(c)))
		idem := a.And(a).Equal(a)
		return assoc && idem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(q quickVec, s2 int64) bool {
		a := q.vector()
		b := randVector(a.Len(), rand.New(rand.NewSource(s2)))
		// NOT(a AND b) == NOT a OR NOT b
		return a.And(b).Not().Equal(a.Not().Or(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFirstSetIsMinimumOfSetBits(t *testing.T) {
	f := func(q quickVec) bool {
		v := q.vector()
		bits := v.SetBits()
		fs := v.FirstSet()
		if len(bits) == 0 {
			return fs == -1
		}
		if fs != bits[0] {
			return false
		}
		if v.Ones() != len(bits) {
			return false
		}
		for i := 1; i < len(bits); i++ {
			if bits[i] <= bits[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndInto2048(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randVector(2048, rng)
	y := randVector(2048, rng)
	dst := New(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AndInto(y, dst)
	}
}

func BenchmarkFirstSet2048(b *testing.B) {
	v := New(2048)
	v.Set(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v.FirstSet() != 2000 {
			b.Fatal("wrong result")
		}
	}
}
