// Package bitvec provides fixed-length bit vectors backed by []uint64 words.
//
// Bit vectors are the datapath type of bit-vector packet classification
// (FSBV, StrideBV): each vector has one bit per rule, bit i corresponds to
// rule index (priority) i, and classification reduces to bitwise AND of
// per-field (or per-stride) vectors followed by a first-set scan that is the
// software analogue of a hardware priority encoder.
//
// The representation is little-endian within the word array: bit i lives in
// word i/64 at position i%64. Trailing bits of the last word beyond Len are
// always kept zero, which lets Ones and FirstSet operate word-at-a-time
// without masking.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New to create a sized vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits. n must be non-negative.
func New(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewOnes returns a vector of n bits with every bit set. This is the
// identity element for And at length n and the conventional initial partial
// result BVP[0..N-1] fed into the first StrideBV pipeline stage.
func NewOnes(n int) Vector {
	v := New(n)
	v.SetAll()
	return v
}

// Len returns the number of bits in the vector.
func (v Vector) Len() int { return v.n }

// Words exposes the backing words (aliased, not copied). The caller must not
// set bits at positions >= Len.
func (v Vector) Words() []uint64 { return v.words }

// SharesStorage reports whether v and o are views of the same backing word
// array. Copy-on-write structures (stridebv delta clones) use it to decide
// whether a vector must be copied before a mutation, and tests use it to
// prove untouched state stayed shared.
func (v Vector) SharesStorage(o Vector) bool {
	return len(v.words) > 0 && len(o.words) > 0 && &v.words[0] == &o.words[0]
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the bits of o without allocating. Lengths must
// match. This is the allocation-free alternative to Clone for callers that
// recycle a scratch vector across classifications.
//
//pclass:mutates
//pclass:hotpath
func (v Vector) CopyFrom(o Vector) {
	v.checkLen(o)
	copy(v.words, o.words)
}

// Set sets bit i to 1.
//
//pclass:mutates
func (v Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
//
//pclass:mutates
func (v Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetTo sets bit i to b.
//
//pclass:mutates
func (v Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is set.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit in the vector.
//
//pclass:mutates
func (v Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// ClearAll zeroes every bit.
//
//pclass:mutates
func (v Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// maskTail zeroes the unused high bits of the final word.
func (v Vector) maskTail() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(v.n%wordBits)) - 1
	}
}

// And returns a new vector equal to v AND o. Lengths must match.
func (v Vector) And(o Vector) Vector {
	v.checkLen(o)
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] & o.words[i]
	}
	return out
}

// AndInto computes dst = v AND o without allocating. Lengths must match.
// dst may alias v or o.
//
//pclass:hotpath
func (v Vector) AndInto(o, dst Vector) {
	v.checkLen(o)
	v.checkLen(dst)
	for i := range v.words {
		dst.words[i] = v.words[i] & o.words[i]
	}
}

// AndWith computes v &= o in place.
//
//pclass:mutates
//pclass:hotpath
func (v Vector) AndWith(o Vector) {
	v.checkLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or returns a new vector equal to v OR o.
func (v Vector) Or(o Vector) Vector {
	v.checkLen(o)
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] | o.words[i]
	}
	return out
}

// OrWith computes v |= o in place.
//
//pclass:mutates
func (v Vector) OrWith(o Vector) {
	v.checkLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// Not returns a new vector with every bit of v inverted (within Len).
func (v Vector) Not() Vector {
	out := New(v.n)
	for i := range v.words {
		out.words[i] = ^v.words[i]
	}
	out.maskTail()
	return out
}

func (v Vector) checkLen(o Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}

// FirstSet returns the index of the lowest set bit, or -1 if the vector is
// all zeros. The lowest index is the highest-priority rule, so FirstSet is
// the software analogue of the priority encoder at the end of the StrideBV
// pipeline and inside a TCAM.
//
//pclass:hotpath
func (v Vector) FirstSet() int {
	for i, w := range v.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextSet returns the index of the lowest set bit >= from, or -1.
//
//pclass:hotpath
func (v Vector) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	wi := from / wordBits
	w := v.words[wi] >> uint(from%wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i := wi + 1; i < len(v.words); i++ {
		if v.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(v.words[i])
		}
	}
	return -1
}

// Ones returns the number of set bits.
func (v Vector) Ones() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// IsZero reports whether no bit is set.
func (v Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o have identical length and bits.
func (v Vector) Equal(o Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SetBits returns the indices of all set bits in ascending order
// (highest-priority first). This is the multi-match result used by IDS-style
// classification where every matching rule must be reported.
func (v Vector) SetBits() []int {
	out := make([]int, 0, v.Ones())
	for i, w := range v.words {
		for w != 0 {
			out = append(out, i*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// String renders the vector MSB-last ("1011…" with bit 0 first), matching
// the rule-index order used throughout the paper's figures.
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// FromString parses a vector from the format produced by String.
func FromString(s string) (Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i)
		case '0':
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at %d", s[i], i)
		}
	}
	return v, nil
}
