package pktclass

// Integration test at the paper's largest operating point (N = 2048):
// build every engine over the same ruleset, verify full agreement on a
// directed trace, push the cycle-accurate pipeline to steady state, and
// confirm the headline hardware shapes one more time through the facade.

import (
	"testing"

	"pktclass/internal/sim"
	"pktclass/internal/stridebv"
)

func TestPaperScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale integration skipped in -short mode")
	}
	const n = 2048
	rs := GenerateRuleSet(n, "prefix-only", 2013)
	trace := GenerateTrace(rs, 3000, 0.85, 2014)

	ref := NewLinear(rs)
	s3, err := NewStrideBV(rs, 3)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewStrideBV(rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTCAM(rs)

	for _, eng := range []Engine{s3, s4, tc} {
		if msg := Verify(rs, eng, trace[:1000]); msg != "" {
			t.Fatalf("%s at N=%d: %s", eng.Name(), n, msg)
		}
	}

	// Cycle-accurate pipeline sustains 2 packets/cycle at this scale and
	// matches the functional engine.
	hr, err := sim.RunStrideBVPipeline(s4, trace)
	if err != nil {
		t.Fatal(err)
	}
	if hr.PacketsPerCycle < 1.9 {
		t.Fatalf("steady-state issue rate %.3f pkts/cycle", hr.PacketsPerCycle)
	}
	for i, h := range trace {
		if hr.Results[i] != ref.Classify(h) {
			t.Fatalf("pipeline diverges at packet %d", i)
		}
	}

	// The modular organization agrees too.
	mod, err := stridebv.NewModular(rs.Expand(), 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace[:500] {
		if mod.Classify(h) != ref.Classify(h) {
			t.Fatalf("modular engine diverges on %s", h)
		}
	}

	// Hardware shapes at the paper's worst case, through the facade.
	d := Virtex7()
	rd, err := EvaluateStrideBVHardware(rs, d, 4, "distram", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := EvaluateStrideBVHardware(rs, d, 3, "bram", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := EvaluateTCAMHardware(rs, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(rd.ThroughputGbps > rb.ThroughputGbps && rb.ThroughputGbps > rt.ThroughputGbps) {
		t.Fatalf("throughput order broken: dist %.1f, bram %.1f, tcam %.1f",
			rd.ThroughputGbps, rb.ThroughputGbps, rt.ThroughputGbps)
	}
	if !(rt.MemoryKbit < rd.MemoryKbit) {
		t.Fatal("TCAM memory not lowest")
	}
	if rb.Utilization.BRAMPct < 95 {
		t.Fatalf("k=3 N=2048 BRAM%% = %.1f, expected near saturation", rb.Utilization.BRAMPct)
	}
	if !(rd.PowerEffMWPerGbps < rt.PowerEffMWPerGbps) {
		t.Fatal("distRAM power efficiency not better than TCAM")
	}
}
