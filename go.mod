module pktclass

go 1.22
