// pktclass deliberately has an empty module graph: the lint suite's
// analysis framework and go vet driver protocol (the role of
// golang.org/x/tools/go/analysis + unitchecker) are implemented in-repo
// under internal/lint on the standard library, so builds, tests and the
// vettool need no module downloads. See LINT.md.
module pktclass

go 1.22
