// Package pktclass is a library for ruleset-feature-independent packet
// classification, reproducing "A Comparison of Ruleset Feature Independent
// Packet Classification Engines on FPGA" (Sanny, Ganegedara, Prasanna,
// 2013).
//
// It provides bit-exact implementations of the two engines the paper
// studies — TCAM (brute-force ternary search, including the SRL16E-based
// FPGA construction) and StrideBV (the stride-decomposed bit-vector
// pipeline, with FSBV as its k=1 case) — plus the FPGA resource, timing
// (placement-driven) and power models that regenerate the paper's
// evaluation: throughput, memory, resource and power efficiency across
// ruleset sizes 32..2048.
//
// # Quick start
//
//	rs, _ := pktclass.ParseRuleSet(rulesText)
//	eng, _ := pktclass.NewStrideBV(rs, 4)
//	rule := eng.Classify(pktclass.Header{SIP: ..., DP: 80, Proto: 6})
//	action := pktclass.ActionOf(rs, rule)
//
// See examples/ for complete programs and cmd/experiments for the full
// paper reproduction.
package pktclass

import (
	"io"

	"pktclass/internal/core"
	"pktclass/internal/floorplan"
	"pktclass/internal/flowcache"
	"pktclass/internal/fpga"
	"pktclass/internal/packet"
	"pktclass/internal/ruleset"
	"pktclass/internal/stridebv"
	"pktclass/internal/tcam"
)

// Core data types.
type (
	// Header is the 5-tuple packet header every engine classifies.
	Header = packet.Header
	// Rule is one 5-field classification rule.
	Rule = ruleset.Rule
	// RuleSet is a priority-ordered classifier.
	RuleSet = ruleset.RuleSet
	// Action is a rule's forwarding decision.
	Action = ruleset.Action
	// Engine is the classifier abstraction shared by all implementations.
	Engine = core.Engine
	// BatchClassifier is implemented by engines with a native
	// zero-allocation batched classification path (StrideBV, RangeStrideBV,
	// TCAM and the linear reference all do).
	BatchClassifier = core.BatchClassifier
	// StrideBV is the bit-vector pipeline engine (FSBV at stride 1).
	StrideBV = stridebv.Engine
	// TCAM is the behavioral ternary-CAM engine.
	TCAM = tcam.Behavioral
	// TCAMFPGA is the cycle-accounted SRL16E TCAM.
	TCAMFPGA = tcam.FPGA
	// Device models the target FPGA.
	Device = fpga.Device
	// Report is a full hardware evaluation of one configuration.
	Report = fpga.Report
	// Comparison is the head-to-head result of both engines on one ruleset.
	Comparison = core.Comparison
	// FlowCache is the sharded, generation-tagged exact-match flow cache.
	FlowCache = flowcache.Cache
	// FlowCacheConfig sizes a FlowCache.
	FlowCacheConfig = flowcache.Config
	// FlowCacheStats is a FlowCache counter snapshot.
	FlowCacheStats = flowcache.Stats
	// Cached is an engine fronted by a FlowCache under one generation.
	Cached = core.Cached
	// ZipfTraceConfig parameterizes skewed flow-burst trace generation.
	ZipfTraceConfig = packet.ZipfTraceConfig
)

// Rule/ruleset construction.

// ParseRuleSet reads a ruleset in the ClassBench-style text format.
func ParseRuleSet(r io.Reader) (*RuleSet, error) { return ruleset.Parse(r) }

// ParseRuleSetString parses a ruleset from a string.
func ParseRuleSetString(s string) (*RuleSet, error) { return ruleset.ParseString(s) }

// GenerateRuleSet produces a deterministic synthetic ruleset with n rules.
// Profile strings: "firewall" (default), "feature-free", "prefix-only".
func GenerateRuleSet(n int, profile string, seed int64) *RuleSet {
	p := ruleset.FirewallProfile
	switch profile {
	case "feature-free":
		p = ruleset.FeatureFree
	case "prefix-only":
		p = ruleset.PrefixOnly
	}
	return ruleset.Generate(ruleset.GenConfig{N: n, Profile: p, Seed: seed, DefaultRule: true})
}

// GenerateTrace draws headers against a ruleset (matchFraction of them
// directed into rule match regions).
func GenerateTrace(rs *RuleSet, count int, matchFraction float64, seed int64) []Header {
	return ruleset.GenerateTrace(rs, ruleset.TraceConfig{
		Count: count, MatchFraction: matchFraction, Locality: 0.3, Seed: seed,
	})
}

// SampleRuleSet returns the paper's Table I example classifier.
func SampleRuleSet() *RuleSet { return ruleset.SampleRuleSet() }

// Engine construction.

// NewStrideBV builds a StrideBV engine with the given stride (the paper
// uses 3 and 4) over the ruleset's ternary expansion.
func NewStrideBV(rs *RuleSet, stride int) (*StrideBV, error) {
	return stridebv.New(rs.Expand(), stride)
}

// NewFSBV builds the per-bit Field-Split Bit Vector engine (stride 1).
func NewFSBV(rs *RuleSet) (*StrideBV, error) { return stridebv.NewFSBV(rs.Expand()) }

// NewTCAM builds the behavioral TCAM engine.
func NewTCAM(rs *RuleSet) *TCAM { return tcam.NewBehavioral(rs.Expand()) }

// NewTCAMFPGA builds the cycle-accounted SRL16E TCAM (16-cycle entry
// writes, single-cycle searches).
func NewTCAMFPGA(rs *RuleSet) *TCAMFPGA { return tcam.NewFPGA(rs.Expand()) }

// NewLinear builds the brute-force linear reference engine.
func NewLinear(rs *RuleSet) Engine { return core.NewLinear(rs) }

// NewRangeStrideBV builds the StrideBV variant with dedicated port-range
// modules: arbitrary ranges cost no ternary expansion (vector width == N).
func NewRangeStrideBV(rs *RuleSet, stride int) (*stridebv.RangeEngine, error) {
	return stridebv.NewRange(rs, stride)
}

// ActionOf resolves a classification result to the rule's action
// (default-deny on miss).
func ActionOf(rs *RuleSet, rule int) Action { return core.Action(rs, rule) }

// NewFlowCache builds the sharded exact-match flow cache (the zero Config
// selects 1<<16 entries across 8 shards).
func NewFlowCache(cfg FlowCacheConfig) *FlowCache { return flowcache.New(cfg) }

// NewCached fronts an engine with the flow cache under a freshly allocated
// generation: repeated 5-tuples are answered from the cache, and retiring
// a build (allocating a new generation over the same cache) turns its
// entries into lazy misses. See internal/flowcache for the generation
// invariant.
func NewCached(eng Engine, cache *FlowCache) *Cached { return core.NewCached(eng, cache) }

// FlowHeaders draws a flow population from the ruleset for the skewed
// traffic generators: n flow headers, matchFraction of them directed into
// rule match regions.
func FlowHeaders(rs *RuleSet, n int, matchFraction float64, seed int64) []Header {
	return ruleset.FlowHeaders(rs, n, matchFraction, seed)
}

// ZipfTrace draws a skewed flow-burst trace over the flow population
// (flows[0] is the hottest; see ZipfTraceConfig).
func ZipfTrace(flows []Header, cfg ZipfTraceConfig) ([]Header, error) {
	return packet.ZipfTrace(flows, cfg)
}

// ClassifyBatch classifies hdrs into out (one rule index or -1 per header;
// lengths must match), using the engine's native batch path when it has one
// and a per-packet loop otherwise. For the batch-capable engines the steady
// state allocates nothing, so sustained packets/sec measures the algorithm
// rather than the allocator.
func ClassifyBatch(eng Engine, hdrs []Header, out []int) {
	core.ClassifyBatchInto(eng, hdrs, out)
}

// Verification and comparison.

// Verify differentially tests an engine against the linear reference over
// a trace; it returns a description of the first divergence, or "" when
// the engine is equivalent on the trace.
func Verify(rs *RuleSet, eng Engine, trace []Header) string {
	ms := core.Verify(core.NewLinear(rs), eng, trace)
	if len(ms) == 0 {
		return ""
	}
	return ms[0].String()
}

// Virtex7 returns the paper's evaluation FPGA.
func Virtex7() Device { return fpga.Virtex7() }

// Compare runs the paper's head-to-head evaluation (StrideBV k∈{3,4} with
// both memory types vs TCAM) for one ruleset on the device.
func Compare(rs *RuleSet, d Device, seed int64) (*Comparison, error) {
	return core.Compare(core.CompareConfig{
		RuleSet: rs,
		Device:  d,
		Mode:    floorplan.Automatic,
		Seed:    seed,
	})
}

// EvaluateStrideBVHardware reports the hardware model (clock, throughput,
// resources, power) for a StrideBV build of the ruleset. memory is
// "distram" or "bram"; floorplanned selects PlanAhead-style placement.
func EvaluateStrideBVHardware(rs *RuleSet, d Device, stride int, memory string, floorplanned bool, seed int64) (Report, error) {
	mem := fpga.DistRAM
	if memory == "bram" {
		mem = fpga.BlockRAM
	}
	mode := floorplan.Automatic
	if floorplanned {
		mode = floorplan.Floorplanned
	}
	c := fpga.StrideBVConfig{Ne: rs.Expand().Len(), K: stride, Memory: mem}
	return fpga.EvaluateStrideBV(d, c, mode, seed)
}

// EvaluateTCAMHardware reports the hardware model for an FPGA TCAM build
// of the ruleset.
func EvaluateTCAMHardware(rs *RuleSet, d Device, seed int64) (Report, error) {
	return fpga.EvaluateTCAM(d, fpga.TCAMConfig{Ne: rs.Expand().Len()}, seed)
}
