package pktclass_test

import (
	"fmt"

	"pktclass"
)

// Example demonstrates the minimal classify flow: parse a ruleset, build
// the StrideBV engine, classify one header.
func Example() {
	rs, err := pktclass.ParseRuleSetString(
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 tcp DROP\n" +
			"@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 * PORT 1\n")
	if err != nil {
		panic(err)
	}
	eng, err := pktclass.NewStrideBV(rs, 4)
	if err != nil {
		panic(err)
	}
	h := pktclass.Header{SIP: 0x0A000001, DIP: 0x08080808, SP: 1234, DP: 80, Proto: 6}
	rule := eng.Classify(h)
	fmt.Println(rule, pktclass.ActionOf(rs, rule))
	// Output: 0 DROP
}

// ExampleNewTCAM shows that the brute-force engine returns identical
// results, including multi-match (IDS) reporting.
func ExampleNewTCAM() {
	rs, err := pktclass.ParseRuleSetString(
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 tcp PORT 9\n" +
			"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 * PORT 2\n" +
			"@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 * PORT 1\n")
	if err != nil {
		panic(err)
	}
	tc := pktclass.NewTCAM(rs)
	h := pktclass.Header{SIP: 0x0A000001, DP: 80, Proto: 6}
	fmt.Println(tc.Classify(h), tc.MultiMatch(h))
	// Output: 0 [0 1 2]
}

// ExampleVerify differentially tests an engine against the linear
// reference.
func ExampleVerify() {
	rs := pktclass.GenerateRuleSet(64, "firewall", 1)
	eng, err := pktclass.NewStrideBV(rs, 3)
	if err != nil {
		panic(err)
	}
	trace := pktclass.GenerateTrace(rs, 500, 0.8, 2)
	fmt.Printf("mismatch=%q\n", pktclass.Verify(rs, eng, trace))
	// Output: mismatch=""
}
