package pktclass

import (
	"testing"

	"pktclass/internal/cli"
)

// ClassifyBatch must be bit-identical to per-packet Classify for every
// engine the CLI can build — the engines with native batch paths (StrideBV,
// RangeStrideBV, TCAM, linear) and the ones that ride the generic fallback
// (HiCuts, the cycle-accounted FPGA TCAM) alike. Empty and single-packet
// batches are the degenerate cases that tend to break scratch reuse.
// CI also runs this under -race, which exercises the scratch pools across
// the test binary's goroutines.
func TestClassifyBatchMatchesClassifyAllEngines(t *testing.T) {
	for _, name := range cli.EngineNames() {
		for _, profile := range []string{"firewall", "prefix-only"} {
			for seed := int64(1); seed <= 2; seed++ {
				rs := GenerateRuleSet(96, profile, 60+seed)
				eng, err := cli.BuildEngine(rs, name, 4)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, profile, err)
				}
				trace := GenerateTrace(rs, 512, 0.7, 70+seed)
				for _, n := range []int{0, 1, 5, len(trace)} {
					batch := trace[:n]
					out := make([]int, n)
					// Poison the output so untouched slots are caught.
					for i := range out {
						out[i] = -99
					}
					ClassifyBatch(eng, batch, out)
					for i, h := range batch {
						if want := eng.Classify(h); out[i] != want {
							t.Fatalf("%s/%s seed %d batch[%d/%d]: got %d want %d",
								name, profile, seed, i, n, out[i], want)
						}
					}
				}
			}
		}
	}
}

func TestClassifyBatchLengthMismatchPanics(t *testing.T) {
	rs := GenerateRuleSet(8, "prefix-only", 80)
	eng := NewLinear(rs)
	trace := GenerateTrace(rs, 4, 0.5, 81)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched out length accepted")
		}
	}()
	ClassifyBatch(eng, trace, make([]int, len(trace)-1))
}
