package pktclass

// Batched classification benchmarks: the software analogue of the paper's
// throughput claims. Each iteration classifies one batchBenchSize-packet
// batch through the engine's native ClassifyBatch path; the reported
// ns/pkt metric and the allocs/op column are the numbers the BENCH_*.json
// snapshots track. The StrideBV batch path must stay at 0 allocs/op in
// steady state (CI gates on it); run with
//
//	go test -bench 'Batch$' -benchmem
//
// N sweeps the paper's ruleset sizes, k the strides it evaluates.

import (
	"fmt"
	"testing"

	"pktclass/internal/core"
)

const batchBenchSize = 1024

var batchBenchNs = []int{32, 128, 512, 2048}

func benchBatch(b *testing.B, eng Engine, trace []Header) {
	b.Helper()
	out := make([]int, len(trace))
	ClassifyBatch(eng, trace, out) // warm any scratch pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyBatch(eng, trace, out)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trace)), "ns/pkt")
	}
}

func batchBenchTrace(b *testing.B, rs *RuleSet) []Header {
	b.Helper()
	return GenerateTrace(rs, batchBenchSize, 0.9, 2)
}

func BenchmarkStrideBVBatch(b *testing.B) {
	for _, k := range []int{3, 4} {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("k%d/N%d", k, n), func(b *testing.B) {
				rs := GenerateRuleSet(n, "prefix-only", 1)
				eng, err := NewStrideBV(rs, k)
				if err != nil {
					b.Fatal(err)
				}
				benchBatch(b, eng, batchBenchTrace(b, rs))
			})
		}
	}
}

func BenchmarkRangeBVBatch(b *testing.B) {
	for _, k := range []int{3, 4} {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("k%d/N%d", k, n), func(b *testing.B) {
				// The range engine's point is native port ranges, so it gets
				// the range-heavy firewall profile rather than prefix-only.
				rs := GenerateRuleSet(n, "firewall", 1)
				eng, err := NewRangeStrideBV(rs, k)
				if err != nil {
					b.Fatal(err)
				}
				benchBatch(b, eng, batchBenchTrace(b, rs))
			})
		}
	}
}

func BenchmarkTCAMBatch(b *testing.B) {
	for _, n := range batchBenchNs {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			rs := GenerateRuleSet(n, "prefix-only", 1)
			benchBatch(b, NewTCAM(rs), batchBenchTrace(b, rs))
		})
	}
}

func BenchmarkLinearBatch(b *testing.B) {
	for _, n := range batchBenchNs {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			rs := GenerateRuleSet(n, "prefix-only", 1)
			benchBatch(b, NewLinear(rs), batchBenchTrace(b, rs))
		})
	}
}

// The generic fallback in core.ClassifyBatchInto is the baseline the native
// paths are measured against: same engine, per-packet interface calls.
func BenchmarkStrideBVPerPacketBaseline(b *testing.B) {
	rs := GenerateRuleSet(512, "prefix-only", 1)
	eng, err := NewStrideBV(rs, 4)
	if err != nil {
		b.Fatal(err)
	}
	trace := batchBenchTrace(b, rs)
	out := make([]int, len(trace))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, h := range trace {
			out[j] = core.Engine(eng).Classify(h)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trace)), "ns/pkt")
	}
}
