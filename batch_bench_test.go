package pktclass

// Batched classification benchmarks: the software analogue of the paper's
// throughput claims. Each iteration classifies one batchBenchSize-packet
// batch through the engine's native ClassifyBatch path; the reported
// ns/pkt metric and the allocs/op column are the numbers the BENCH_*.json
// snapshots track. The StrideBV batch path must stay at 0 allocs/op in
// steady state (CI gates on it); run with
//
//	go test -bench 'Batch$' -benchmem
//
// N sweeps the paper's ruleset sizes, k the strides it evaluates.

import (
	"fmt"
	"testing"

	"pktclass/internal/core"
)

const batchBenchSize = 1024

var batchBenchNs = []int{32, 128, 512, 2048}

func benchBatch(b *testing.B, eng Engine, trace []Header) {
	b.Helper()
	out := make([]int, len(trace))
	ClassifyBatch(eng, trace, out) // warm any scratch pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyBatch(eng, trace, out)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trace)), "ns/pkt")
	}
}

func batchBenchTrace(b *testing.B, rs *RuleSet) []Header {
	b.Helper()
	return GenerateTrace(rs, batchBenchSize, 0.9, 2)
}

func BenchmarkStrideBVBatch(b *testing.B) {
	for _, k := range []int{3, 4} {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("k%d/N%d", k, n), func(b *testing.B) {
				rs := GenerateRuleSet(n, "prefix-only", 1)
				eng, err := NewStrideBV(rs, k)
				if err != nil {
					b.Fatal(err)
				}
				benchBatch(b, eng, batchBenchTrace(b, rs))
			})
		}
	}
}

func BenchmarkRangeBVBatch(b *testing.B) {
	for _, k := range []int{3, 4} {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("k%d/N%d", k, n), func(b *testing.B) {
				// The range engine's point is native port ranges, so it gets
				// the range-heavy firewall profile rather than prefix-only.
				rs := GenerateRuleSet(n, "firewall", 1)
				eng, err := NewRangeStrideBV(rs, k)
				if err != nil {
					b.Fatal(err)
				}
				benchBatch(b, eng, batchBenchTrace(b, rs))
			})
		}
	}
}

func BenchmarkTCAMBatch(b *testing.B) {
	for _, n := range batchBenchNs {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			rs := GenerateRuleSet(n, "prefix-only", 1)
			benchBatch(b, NewTCAM(rs), batchBenchTrace(b, rs))
		})
	}
}

func BenchmarkLinearBatch(b *testing.B) {
	for _, n := range batchBenchNs {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			rs := GenerateRuleSet(n, "prefix-only", 1)
			benchBatch(b, NewLinear(rs), batchBenchTrace(b, rs))
		})
	}
}

// Flow-cached benchmarks: the same engines fronted by the sharded
// generation-tagged flow cache, swept across traffic-skew regimes. Under
// uniform traffic over a large flow population the cache mostly misses and
// the numbers bound its overhead; under Zipf skew (s = 0.9 and the paper
// classifiers' canonical s = 1.2) the hit rate climbs and ns/pkt collapses
// toward the probe cost. The hit% metric reports the steady-state rate so
// a run shows which regime each configuration landed in. The cached
// StrideBV path shares the uncached path's 0 allocs/op gate (CI parses
// BenchmarkCachedStrideBVBatch benchmem output).

// cachedBenchSkews spans the hit-rate regimes. A benchmark replays one
// fixed trace, so any cache with capacity >= the trace's distinct keys
// converges to all-hits whatever the skew; the regime is therefore the
// working-set-to-capacity ratio, and each entry sets both. uniform (s < 0)
// cycles nearly-all-distinct headers through a cache far smaller than the
// working set — CLOCK evicts every key before its reuse, so the numbers
// bound the cache's pure overhead on a miss-dominated workload. The Zipf
// flow-burst traces run against an amply sized cache and measure the
// hit-dominated regimes.
var cachedBenchSkews = []struct {
	name    string
	s       float64
	entries int
}{
	{"uniform", -1, 64},
	{"zipf0.9", 0.9, 1 << 14},
	{"zipf1.2", 1.2, 1 << 14},
}

// cachedBenchTrace draws a batchBenchSize trace in the requested skew
// regime: s < 0 selects the uncached benchmarks' directed trace
// (miss-dominated); s >= 0 a Zipf-s flow-burst trace over a 256-flow
// population directed at the ruleset (hit-dominated as s grows).
func cachedBenchTrace(tb testing.TB, rs *RuleSet, s float64) []Header {
	tb.Helper()
	if s < 0 {
		return GenerateTrace(rs, batchBenchSize, 0.9, 2)
	}
	pop := FlowHeaders(rs, 256, 0.9, 2)
	trace, err := ZipfTrace(pop, ZipfTraceConfig{Count: batchBenchSize, S: s, MeanBurst: 4, Seed: 3})
	if err != nil {
		tb.Fatal(err)
	}
	return trace
}

func benchCachedBatch(b *testing.B, eng Engine, trace []Header, entries int) {
	b.Helper()
	cached := NewCached(eng, NewFlowCache(FlowCacheConfig{Entries: entries}))
	out := make([]int, len(trace))
	ClassifyBatch(cached, trace, out) // warm the cache and scratch pools
	before := cached.Cache().Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyBatch(cached, trace, out)
	}
	b.StopTimer()
	after := cached.Cache().Stats()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trace)), "ns/pkt")
		hits := after.Hits - before.Hits
		if lookups := hits + after.Misses - before.Misses; lookups > 0 {
			b.ReportMetric(100*float64(hits)/float64(lookups), "hit%")
		}
	}
}

// Stride is fixed at the paper's k = 4 for the cached sweeps: the cache
// layer's cost is engine-independent, and the stride only scales the cost
// of the misses (which BenchmarkStrideBVBatch already sweeps).
func BenchmarkCachedStrideBVBatch(b *testing.B) {
	for _, skew := range cachedBenchSkews {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("%s/k4/N%d", skew.name, n), func(b *testing.B) {
				rs := GenerateRuleSet(n, "prefix-only", 1)
				eng, err := NewStrideBV(rs, 4)
				if err != nil {
					b.Fatal(err)
				}
				benchCachedBatch(b, eng, cachedBenchTrace(b, rs, skew.s), skew.entries)
			})
		}
	}
}

func BenchmarkCachedRangeBVBatch(b *testing.B) {
	for _, skew := range cachedBenchSkews {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("%s/k4/N%d", skew.name, n), func(b *testing.B) {
				rs := GenerateRuleSet(n, "firewall", 1)
				eng, err := NewRangeStrideBV(rs, 4)
				if err != nil {
					b.Fatal(err)
				}
				benchCachedBatch(b, eng, cachedBenchTrace(b, rs, skew.s), skew.entries)
			})
		}
	}
}

func BenchmarkCachedTCAMBatch(b *testing.B) {
	for _, skew := range cachedBenchSkews {
		for _, n := range batchBenchNs {
			b.Run(fmt.Sprintf("%s/N%d", skew.name, n), func(b *testing.B) {
				rs := GenerateRuleSet(n, "prefix-only", 1)
				benchCachedBatch(b, NewTCAM(rs), cachedBenchTrace(b, rs, skew.s), skew.entries)
			})
		}
	}
}

// The cached batch path must allocate nothing in steady state, in every
// hit-rate regime: hits are pure probes, and misses reuse the pooled
// scratch plus the inner engine's own zero-allocation batch path.
func TestCachedBatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; zero-alloc gate runs in normal builds")
	}
	rs := GenerateRuleSet(512, "prefix-only", 1)
	eng, err := NewStrideBV(rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, skew := range cachedBenchSkews {
		t.Run(skew.name, func(t *testing.T) {
			trace := cachedBenchTrace(t, rs, skew.s)
			cached := NewCached(eng, NewFlowCache(FlowCacheConfig{Entries: skew.entries}))
			out := make([]int, len(trace))
			ClassifyBatch(cached, trace, out) // warm cache and pools
			if avg := testing.AllocsPerRun(50, func() {
				ClassifyBatch(cached, trace, out)
			}); avg != 0 {
				t.Fatalf("cached batch path allocates %.1f allocs/op in steady state, want 0", avg)
			}
		})
	}
}

// The generic fallback in core.ClassifyBatchInto is the baseline the native
// paths are measured against: same engine, per-packet interface calls.
func BenchmarkStrideBVPerPacketBaseline(b *testing.B) {
	rs := GenerateRuleSet(512, "prefix-only", 1)
	eng, err := NewStrideBV(rs, 4)
	if err != nil {
		b.Fatal(err)
	}
	trace := batchBenchTrace(b, rs)
	out := make([]int, len(trace))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, h := range trace {
			out[j] = core.Engine(eng).Classify(h)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trace)), "ns/pkt")
	}
}
