package pktclass

// Extensions beyond the paper's two engines: the feature-reliant
// decision-tree contrast, the partitioned-TCAM power optimization, and the
// multi-lane StrideBV configuration the paper defers as future work.

import (
	"pktclass/internal/dtree"
	"pktclass/internal/floorplan"
	"pktclass/internal/fpga"
	"pktclass/internal/stridebv"
	"pktclass/internal/tcam"
)

// HiCuts is the decision-tree classifier (feature-*reliant*, included as
// the contrast to the two feature-independent engines).
type HiCuts = dtree.Tree

// NewHiCuts builds a HiCuts decision tree with default parameters
// (binth 8, spfac 4).
func NewHiCuts(rs *RuleSet) (*HiCuts, error) {
	return dtree.New(rs, dtree.DefaultConfig())
}

// PartitionedTCAM is the power-optimized TCAM organization: a pre-decoder
// enables only the relevant block per search.
type PartitionedTCAM = tcam.Partitioned

// NewPartitionedTCAM builds a partitioned TCAM with the default 4-bit
// destination-IP pre-decoder.
func NewPartitionedTCAM(rs *RuleSet) (*PartitionedTCAM, error) {
	return tcam.NewPartitioned(rs.Expand(), tcam.DefaultPartitionConfig())
}

// ParallelStrideBV is the multi-lane StrideBV configuration (two lanes per
// dual-ported stage-memory copy).
type ParallelStrideBV = stridebv.Parallel

// NewParallelStrideBV builds an L-lane StrideBV array over one ruleset.
func NewParallelStrideBV(rs *RuleSet, stride, lanes int) (*ParallelStrideBV, error) {
	eng, err := stridebv.New(rs.Expand(), stride)
	if err != nil {
		return nil, err
	}
	return stridebv.NewParallel(eng, lanes)
}

// EvaluateMultiLaneHardware reports the hardware model for a multi-lane
// StrideBV deployment — the paper's "400G+" scaling path.
func EvaluateMultiLaneHardware(rs *RuleSet, d Device, stride int, memory string, lanes int, seed int64) (Report, error) {
	mem := fpga.DistRAM
	if memory == "bram" {
		mem = fpga.BlockRAM
	}
	m := fpga.MultiConfig{
		Base:  fpga.StrideBVConfig{Ne: rs.Expand().Len(), K: stride, Memory: mem},
		Lanes: lanes,
	}
	return fpga.EvaluateStrideBVMulti(d, m, floorplan.Floorplanned, seed)
}
