// Command rulegen generates synthetic rulesets and packet traces in the
// text formats the rest of the tools consume.
//
// Usage:
//
//	rulegen -n 512 -profile firewall -seed 1 -o rules.txt
//	rulegen -n 512 -trace 10000 -match 0.8 -o trace.txt
//
// With -trace > 0 the tool emits headers (one "sip dip sp dp proto" line
// each) drawn against the generated ruleset instead of the ruleset itself.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"pktclass/internal/packet"
	"pktclass/internal/ruleset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rulegen: ")
	var (
		n       = flag.Int("n", 512, "number of rules")
		profile = flag.String("profile", "firewall", "ruleset profile: firewall | feature-free | prefix-only | acl | fw | ipc (ClassBench-style seeds)")
		seed    = flag.Int64("seed", 1, "generator seed")
		defRule = flag.Bool("default-rule", true, "append a wildcard default rule")
		trace   = flag.Int("trace", 0, "emit this many trace headers instead of the ruleset")
		match   = flag.Float64("match", 0.8, "fraction of trace headers directed at rules")
		local   = flag.Float64("locality", 0.3, "probability a trace header repeats the previous flow")
		binOut  = flag.Bool("binary", false, "write the trace in the compact binary format")
		stats   = flag.Bool("stats", false, "print a ruleset feature report instead of the ruleset")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	var rs *ruleset.RuleSet
	switch *profile {
	case "firewall", "feature-free", "prefix-only":
		p := ruleset.FirewallProfile
		switch *profile {
		case "feature-free":
			p = ruleset.FeatureFree
		case "prefix-only":
			p = ruleset.PrefixOnly
		}
		rs = ruleset.Generate(ruleset.GenConfig{N: *n, Profile: p, Seed: *seed, DefaultRule: *defRule})
	case "acl", "fw", "ipc":
		var sd *ruleset.Seed
		switch *profile {
		case "acl":
			sd = ruleset.ACLSeed()
		case "fw":
			sd = ruleset.FWSeed()
		case "ipc":
			sd = ruleset.IPCSeed()
		}
		var err error
		rs, err = ruleset.GenerateFromSeed(sd, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if *defRule {
			//pclass:allow-mutate freshly generated, not yet shared
			rs.Rules = append(rs.Rules[:len(rs.Rules)-1], ruleset.NewWildcardRule(ruleset.Action{Kind: ruleset.Drop}))
		}
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if *stats {
		fmt.Fprint(bw, ruleset.Analyze(rs))
		return
	}
	if *trace > 0 {
		headers := ruleset.GenerateTrace(rs, ruleset.TraceConfig{
			Count: *trace, MatchFraction: *match, Locality: *local, Seed: *seed + 1,
		})
		if *binOut {
			if err := packet.WriteBinaryTrace(bw, headers); err != nil {
				log.Fatal(err)
			}
			return
		}
		for _, h := range headers {
			fmt.Fprintln(bw, h.String())
		}
		return
	}
	if *binOut {
		log.Fatal("-binary applies only to -trace output")
	}
	if err := rs.Write(bw); err != nil {
		log.Fatal(err)
	}
}
