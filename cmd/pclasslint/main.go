// Pclasslint is this repository's static-analysis suite: a go vet
// -vettool enforcing the engine-room invariants the compiler cannot see.
// See LINT.md for the analyzer catalogue and the annotation grammar.
//
// Usage:
//
//	go build -o bin/pclasslint ./cmd/pclasslint
//	go vet -vettool=$PWD/bin/pclasslint ./...
package main

import (
	"pktclass/internal/lint/analyzers"
	"pktclass/internal/lint/unit"
)

func main() {
	unit.Main("pktclass", analyzers.All())
}
