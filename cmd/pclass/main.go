// Command pclass classifies a packet trace against a ruleset with a chosen
// engine and reports per-packet decisions and aggregate statistics.
//
// Usage:
//
//	pclass -rules rules.txt -trace trace.txt -engine stridebv -stride 4
//	pclass -rules rules.txt -trace trace.bin -engine tcam -v
//	pclass serve -rules rules.txt -clients 8 -update-every 5ms
//	pclass serve -rules rules.txt -measure
//	pclass bench -engines stridebv,tcam -sizes 32,512 -json -out BENCH.json
//
// Engines: stridebv | fsbv | rangebv | tcam | tcam-fpga | hicuts | linear.
// Traces may be text or binary (format is sniffed). Every run is
// differentially verified against the linear reference unless -noverify.
//
// The serve subcommand runs the concurrent classification service: a
// load generator drives worker goroutines while an optional updater lands
// atomic ruleset hot-swaps (-update-every); -measure instead replays the
// trace once under continuous churn and reports throughput degradation.
//
// The bench subcommand measures each engine's batched classification rate
// over synthetic rulesets and can emit a BENCH_*.json snapshot.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pktclass/internal/cli"
	"pktclass/internal/core"
	"pktclass/internal/ruleset"
	"pktclass/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pclass: ")
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	var (
		rulesPath = flag.String("rules", "", "ruleset file (required)")
		tracePath = flag.String("trace", "", "trace file, text or binary (required)")
		engine    = flag.String("engine", "stridebv", "engine: "+strings.Join(cli.EngineNames(), " | "))
		stride    = flag.Int("stride", 4, "stride length for stridebv/rangebv")
		workers   = flag.Int("workers", 0, "classification workers (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print one line per packet")
		noVerify  = flag.Bool("noverify", false, "skip differential verification")
		multi     = flag.Bool("multimatch", false, "report all matching rules (IDS mode)")
	)
	flag.Parse()
	if *rulesPath == "" || *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	rs, err := cli.LoadRuleSet(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := cli.LoadTrace(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cli.BuildEngine(rs, *engine, *stride)
	if err != nil {
		log.Fatal(err)
	}

	if !*noVerify {
		sample := trace
		if len(sample) > 2000 {
			sample = sample[:2000]
		}
		if ms := core.Verify(core.NewLinear(rs), eng, sample); len(ms) > 0 {
			log.Fatalf("engine failed verification: %s", ms[0])
		}
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *multi {
		start := time.Now()
		var matches int
		for i, h := range trace {
			m := eng.MultiMatch(h)
			matches += len(m)
			if *verbose {
				fmt.Fprintf(out, "%6d %s -> %v\n", i, h, m)
			}
		}
		fmt.Fprintf(out, "%d packets, %d total matches, %.0f pkt/s (%s, multi-match)\n",
			len(trace), matches, float64(len(trace))/time.Since(start).Seconds(), eng.Name())
		return
	}

	br := sim.ClassifyBatch(eng, trace, *workers)
	stats := struct {
		forwarded, dropped, missed int
	}{}
	for i, r := range br.Results {
		a := core.Action(rs, r)
		switch {
		case r < 0:
			stats.missed++
		case a.Kind == ruleset.Drop:
			stats.dropped++
		default:
			stats.forwarded++
		}
		if *verbose {
			fmt.Fprintf(out, "%6d %s -> rule %d (%s)\n", i, trace[i], r, a)
		}
	}
	fmt.Fprintf(out, "engine      %s\n", eng.Name())
	fmt.Fprintf(out, "packets     %d\n", br.Packets)
	fmt.Fprintf(out, "forwarded   %d\n", stats.forwarded)
	fmt.Fprintf(out, "dropped     %d\n", stats.dropped)
	fmt.Fprintf(out, "no match    %d (default deny)\n", stats.missed)
	fmt.Fprintf(out, "rate        %.0f packets/s over %d workers\n", br.PacketsPerSec, br.Workers)
}
