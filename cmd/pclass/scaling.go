// bench -scaling: the multi-core scaling sweep. For each worker count the
// sweep builds a steered service (RSS-style flow steering, worker-private
// flow caches), drives it from one feeder goroutine per worker over the
// synchronous zero-allocation ClassifySteered path, and reports aggregate
// throughput plus scaling efficiency against the single-worker baseline —
// the software analogue of the paper's area-vs-throughput replication
// argument: P engines should buy ~P times the packet rate.
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pktclass/internal/cli"
	"pktclass/internal/packet"
	"pktclass/internal/ruleset"
	"pktclass/internal/serve"
)

// scalingResult is one (engine, ruleset size, worker count) point of the
// sweep. Efficiency is PktsPerSec divided by (workers x the per-worker
// rate of the sweep's smallest point) — 1.0 is perfectly linear scaling.
type scalingResult struct {
	Engine       string  `json:"engine"`
	Rules        int     `json:"rules"`
	Workers      int     `json:"workers"`
	BatchSize    int     `json:"batch_size"`
	CacheEntries int     `json:"cache_entries,omitempty"`
	Skew         string  `json:"skew,omitempty"`
	HitRate      float64 `json:"hit_rate,omitempty"`
	PktsPerSec   float64 `json:"pkts_per_sec"`
	Mpps         float64 `json:"mpps"`
	Speedup      float64 `json:"speedup"`
	Efficiency   float64 `json:"efficiency"`
	// Imbalance is the steering imbalance index over the measured window
	// (max/mean per-worker load; 1.0 = perfectly balanced, Workers = one
	// worker took everything) — the skew side of the scaling story that
	// efficiency alone hides: a Zipf point can scale poorly either because
	// the path stops scaling or because steering parked the elephants on
	// one worker, and this column tells the two apart.
	Imbalance float64 `json:"imbalance,omitempty"`
}

// scalingConfig carries the sweep knobs shared with the classification
// bench plus the per-point measurement duration.
type scalingConfig struct {
	packets int
	profile string
	cache   int
	skew    string
	zipfS   float64
	flows   int
	burst   float64
	seed    int64
	stride  int
	dur     time.Duration
}

// scalingTrace builds one feeder's submission batch. Each feeder gets its
// own flow population slice (distinct seed): feeders model independent
// NIC queues, and sharing one flow set would let the private caches of a
// W-worker point serve another feeder's warm-up.
func scalingTrace(rs *ruleset.RuleSet, cfg scalingConfig, feeder int) ([]packet.Header, error) {
	seed := cfg.seed + int64(feeder)*101
	if cfg.zipfS >= 0 {
		pop := ruleset.FlowHeaders(rs, cfg.flows, 0.9, seed+1)
		return packet.ZipfTrace(pop, packet.ZipfTraceConfig{
			Count: cfg.packets, S: cfg.zipfS, MeanBurst: cfg.burst, Seed: seed + 2,
		})
	}
	return ruleset.GenerateTrace(rs, ruleset.TraceConfig{
		Count: cfg.packets, MatchFraction: 0.9, Locality: 0.3, Seed: seed + 1,
	}), nil
}

// scalingPoint measures one worker count: W feeders hammer a W-worker
// steered service for cfg.dur and the aggregate completed-packet rate is
// the point's throughput.
func scalingPoint(name string, rules, workers int, cfg scalingConfig) (scalingResult, error) {
	p := ruleset.FirewallProfile
	switch cfg.profile {
	case "feature-free":
		p = ruleset.FeatureFree
	case "prefix-only":
		p = ruleset.PrefixOnly
	}
	rs := ruleset.Generate(ruleset.GenConfig{N: rules, Profile: p, Seed: cfg.seed, DefaultRule: true})
	build := cli.EngineBuilderOpts(name, cli.Options{Stride: cfg.stride})
	svc, err := serve.New(rs, build, serve.Config{
		Workers:      workers,
		CacheEntries: cfg.cache,
		Steer:        true,
		Seed:         cfg.seed,
	})
	if err != nil {
		return scalingResult{}, err
	}

	traces := make([][]packet.Header, workers)
	outs := make([][]int, workers)
	for f := 0; f < workers; f++ {
		if traces[f], err = scalingTrace(rs, cfg, f); err != nil {
			return scalingResult{}, err
		}
		outs[f] = make([]int, len(traces[f]))
		// Warm-up: grow the steer scratch pool and fill the private caches
		// so the timed window measures steady state, not cold misses.
		if err := svc.ClassifySteered(traces[f], outs[f]); err != nil {
			return scalingResult{}, err
		}
	}
	warm, _ := svc.CacheStats()
	// Baseline load sample: the measured window's imbalance index is the
	// delta between this sample and the end-of-window one, so warm-up
	// traffic never pollutes it.
	svc.ImbalanceIndex()

	var classified atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for f := 0; f < workers; f++ {
		wg.Add(1)
		go func(trace []packet.Header, out []int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := svc.ClassifySteered(trace, out); err != nil {
					return
				}
				classified.Add(int64(len(trace)))
			}
		}(traces[f], outs[f])
	}
	time.Sleep(cfg.dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	imbalance := svc.ImbalanceIndex()

	r := scalingResult{
		Engine:       name,
		Rules:        rules,
		Workers:      workers,
		BatchSize:    cfg.packets,
		CacheEntries: cfg.cache,
		PktsPerSec:   float64(classified.Load()) / elapsed.Seconds(),
	}
	r.Mpps = r.PktsPerSec / 1e6
	r.Imbalance = imbalance
	if cfg.zipfS >= 0 || cfg.cache > 0 {
		r.Skew = cfg.skew
	}
	if st, ok := svc.CacheStats(); ok {
		if lookups := (st.Hits - warm.Hits) + (st.Misses - warm.Misses); lookups > 0 {
			r.HitRate = float64(st.Hits-warm.Hits) / float64(lookups)
		}
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(closeCtx); err != nil {
		return scalingResult{}, fmt.Errorf("scaling close: %w", err)
	}
	return r, nil
}

// runScaling sweeps one engine/size pair across the worker counts and
// fills in speedup/efficiency against the per-worker rate of the sweep's
// first (smallest) point.
func runScaling(name string, rules int, workersList []int, cfg scalingConfig) ([]scalingResult, error) {
	out := make([]scalingResult, 0, len(workersList))
	perWorkerBase := 0.0
	for _, w := range workersList {
		r, err := scalingPoint(name, rules, w, cfg)
		if err != nil {
			return nil, fmt.Errorf("scaling %s N=%d workers=%d: %w", name, rules, w, err)
		}
		if perWorkerBase == 0 && r.PktsPerSec > 0 {
			perWorkerBase = r.PktsPerSec / float64(r.Workers)
		}
		if perWorkerBase > 0 {
			r.Speedup = r.PktsPerSec / perWorkerBase
			r.Efficiency = r.Speedup / float64(r.Workers)
		}
		out = append(out, r)
	}
	return out, nil
}

func printScalingRow(r scalingResult) {
	label := r.Engine
	if r.CacheEntries > 0 {
		label = "cached-" + label
	}
	fmt.Printf("%-20s N=%-5d workers=%-3d %9.3f Mpps  speedup %5.2fx  efficiency %5.2f  imbalance %4.2f",
		label, r.Rules, r.Workers, r.Mpps, r.Speedup, r.Efficiency, r.Imbalance)
	if r.CacheEntries > 0 {
		fmt.Printf("  %5.1f%% hits", 100*r.HitRate)
	}
	fmt.Println()
}
