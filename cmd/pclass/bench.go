// The bench subcommand: measure the software classification rate of each
// engine's batched fast path over synthetic rulesets at the paper's sizes,
// optionally fronted by the exact-match flow cache under uniform or Zipf
// flow-burst traffic, and optionally emit a BENCH_*.json snapshot so
// successive revisions can track pkts/sec, ns/pkt and allocs/pkt over
// time. -compare diffs two snapshots per configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pktclass/internal/cli"
	"pktclass/internal/core"
	"pktclass/internal/flowcache"
	"pktclass/internal/packet"
	"pktclass/internal/ruleset"
)

// benchResult is one (engine, stride, ruleset size, cache, skew)
// measurement.
type benchResult struct {
	Engine       string  `json:"engine"`
	Rules        int     `json:"rules"`
	Stride       int     `json:"stride,omitempty"`
	BatchSize    int     `json:"batch_size"`
	CacheEntries int     `json:"cache_entries,omitempty"`
	Skew         string  `json:"skew,omitempty"`
	Splitter     string  `json:"splitter,omitempty"`
	Partitions   int     `json:"partitions,omitempty"`
	PrefixBits   int     `json:"prefix_bits,omitempty"`
	HitRate      float64 `json:"hit_rate,omitempty"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	PktsPerSec   float64 `json:"pkts_per_sec"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
}

// key identifies a configuration across snapshots for -compare. The
// partition fields are appended only when set, so keys written by older
// snapshots (which predate the partitioned engine) still match.
func (r benchResult) key() string {
	k := fmt.Sprintf("%s k=%d N=%d batch=%d cache=%d skew=%s",
		r.Engine, r.Stride, r.Rules, r.BatchSize, r.CacheEntries, r.Skew)
	if r.Splitter != "" || r.Partitions != 0 || r.PrefixBits != 0 {
		k += fmt.Sprintf(" split=%s parts=%d pb=%d", r.Splitter, r.Partitions, r.PrefixBits)
	}
	return k
}

// benchSnapshot is the BENCH_*.json document. The environment header
// (CPU, GOMAXPROCS, commit) makes snapshots from different machines and
// revisions comparable as a trajectory rather than bare numbers.
type benchSnapshot struct {
	Date       string        `json:"date"`
	Go         string        `json:"go"`
	CPU        string        `json:"cpu,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Commit     string        `json:"commit,omitempty"`
	Profile    string        `json:"profile"`
	Results    []benchResult `json:"results"`
	// Churn holds -churn mode's update-throughput measurements (empty for
	// classification-only snapshots).
	Churn []churnResult `json:"churn,omitempty"`
	// Scaling holds -scaling mode's worker sweep (aggregate throughput and
	// efficiency per worker count on the steered service).
	Scaling []scalingResult `json:"scaling,omitempty"`
}

func runBench(args []string) {
	fs := flag.NewFlagSet("pclass bench", flag.ExitOnError)
	var (
		engines    = fs.String("engines", "stridebv,fsbv,rangebv,tcam,linear", "comma-separated engines to measure")
		sizes      = fs.String("sizes", "32,128,512,2048", "comma-separated ruleset sizes")
		strides    = fs.String("strides", "3,4", "comma-separated strides for stridebv/rangebv")
		packets    = fs.Int("packets", 1024, "packets per classified batch")
		profile    = fs.String("profile", "prefix-only", "ruleset profile: firewall | feature-free | prefix-only")
		cacheCSV   = fs.String("cache", "0", "comma-separated flow-cache capacities fronting each engine (0 = uncached); each value adds a measurement series")
		skew       = fs.String("skew", "uniform", "traffic skew: uniform | zipf:S (e.g. zipf:1.2)")
		flows      = fs.Int("flows", 256, "flow population size for zipf traffic")
		burst      = fs.Float64("burst", 4, "mean flow-burst length for zipf traffic")
		jsonOut    = fs.Bool("json", false, "emit the snapshot as JSON on stdout")
		outPath    = fs.String("out", "", "write the JSON snapshot to this file (implies -json)")
		compare    = fs.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of benchmarking")
		maxRegress = fs.Float64("max-regress", 0, "with -compare: exit non-zero when a gated config's ns/pkt regresses by more than this percent (0 disables the gate)")
		gateCSV    = fs.String("gate", "stridebv,tcam,cached", "with -compare: engine names subject to -max-regress ('cached' gates every cache-fronted series)")
		splitter   = fs.String("splitter", "", "partitioned engines: splitting policy, prefix | band (empty = engine default)")
		partsFlag  = fs.Int("partitions", 0, "partitioned engines: band count (0 = derive from GOMAXPROCS)")
		prefixBits = fs.Int("prefix-bits", 0, "partitioned engines: prefix pre-decoder width (0 = size from N)")
		diffVerify = fs.Int("verify-diff", 0, "differentially verify each engine against the linear reference over this many headers before measuring (0 disables)")
		churnFlag  = fs.Bool("churn", false, "measure sustained rule-update throughput (incremental vs rebuild) instead of classification rate")
		churnDur   = fs.Duration("churn-dur", 800*time.Millisecond, "churn mode: duration of each measurement phase")
		churnOps   = fs.Int("churn-ops", 64, "churn mode: rule replacements per update batch")
		workers    = fs.Int("workers", 2, "churn mode: serving workers")
		verifyPkts = fs.Int("verify", 64, "churn mode: per-swap differential verification trace length")
		seedFlag   = fs.Int64("seed", 1, "deterministic seed for rulesets and traces")
		scaling    = fs.Bool("scaling", false, "measure multi-core scaling: sweep steered-service worker counts and report aggregate Mpps + efficiency per point")
		scaleCSV   = fs.String("scale-workers", "", "scaling mode: comma-separated worker counts (empty = 1,2,4,... up to GOMAXPROCS)")
		scaleDur   = fs.Duration("scale-dur", 500*time.Millisecond, "scaling mode: measurement duration per worker count")
		minEff     = fs.Float64("min-efficiency", 0, "scaling mode: exit non-zero when any multi-worker point's efficiency falls below this (0 disables the gate)")
		allowEnv   = fs.Bool("allow-env-mismatch", false, "with -compare: proceed despite differing cpu/gomaxprocs environment headers (deltas are then not comparable; the gate still applies)")
	)
	fs.Parse(args)
	if *compare {
		if fs.NArg() != 2 {
			log.Fatal("pclass bench -compare needs exactly two snapshot files: old.json new.json")
		}
		if err := compareSnapshots(fs.Arg(0), fs.Arg(1), *maxRegress, *gateCSV, *allowEnv); err != nil {
			log.Fatal(err)
		}
		return
	}
	ns, err := parseInts(*sizes)
	if err != nil {
		log.Fatalf("-sizes: %v", err)
	}
	ks, err := parseInts(*strides)
	if err != nil {
		log.Fatalf("-strides: %v", err)
	}
	caches, err := parseCacheList(*cacheCSV)
	if err != nil {
		log.Fatalf("-cache: %v", err)
	}
	zipfS, err := parseSkew(*skew)
	if err != nil {
		log.Fatalf("-skew: %v", err)
	}

	snap := benchSnapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		CPU:        cpuModel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
		Profile:    *profile,
	}
	if *scaling {
		wl, err := scalingWorkerList(*scaleCSV)
		if err != nil {
			log.Fatalf("-scale-workers: %v", err)
		}
		scfg := scalingConfig{
			packets: *packets, profile: *profile, skew: *skew, zipfS: zipfS,
			flows: *flows, burst: *burst, seed: *seedFlag, stride: 4, dur: *scaleDur,
		}
		if len(ks) > 0 {
			scfg.stride = ks[0]
		}
		for _, name := range strings.Split(*engines, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			for _, n := range ns {
				for _, cacheN := range caches {
					scfg.cache = cacheN
					rows, err := runScaling(name, n, wl, scfg)
					if err != nil {
						log.Fatal(err)
					}
					snap.Scaling = append(snap.Scaling, rows...)
					if !*jsonOut && *outPath == "" {
						for _, r := range rows {
							printScalingRow(r)
						}
					}
				}
			}
		}
		var below []string
		for _, r := range snap.Scaling {
			if *minEff > 0 && r.Workers > 1 && r.Efficiency < *minEff {
				below = append(below, fmt.Sprintf("%s N=%d workers=%d: efficiency %.2f < %.2f",
					r.Engine, r.Rules, r.Workers, r.Efficiency, *minEff))
			}
		}
		if len(below) > 0 {
			for _, b := range below {
				fmt.Println("SCALING", b)
			}
			log.Fatalf("bench: %d scaling point(s) below the -min-efficiency floor", len(below))
		}
	} else if *churnFlag {
		ccfg := churnConfig{
			stride: 4, workers: *workers, batch: 256, opsPerSwap: *churnOps,
			dur: *churnDur, verify: *verifyPkts, seed: *seedFlag,
		}
		for _, name := range strings.Split(*engines, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			for _, n := range ns {
				for _, incremental := range []bool{true, false} {
					r, err := churnOne(name, n, incremental, ccfg)
					if err != nil {
						log.Fatalf("churn %s N=%d: %v", name, n, err)
					}
					snap.Churn = append(snap.Churn, r)
					if !*jsonOut && *outPath == "" {
						printChurnRow(r)
					}
				}
			}
		}
	} else {
		for _, name := range strings.Split(*engines, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			// Only the stride-parameterized engines sweep k; the rest run
			// once per size with the stride recorded as 0.
			engKs := []int{0}
			if name == "stridebv" || name == "rangebv" {
				engKs = ks
			}
			for _, k := range engKs {
				for _, n := range ns {
					for _, cacheN := range caches {
						cfg := benchConfig{
							packets: *packets, profile: *profile, cache: cacheN,
							skew: *skew, zipfS: zipfS, flows: *flows, burst: *burst, seed: *seedFlag,
							splitter: *splitter, partitions: *partsFlag, prefixBits: *prefixBits,
							verify: *diffVerify,
						}
						r, err := benchOne(name, k, n, cfg)
						if err != nil {
							log.Fatalf("%s N=%d: %v", name, n, err)
						}
						snap.Results = append(snap.Results, r)
						if !*jsonOut && *outPath == "" {
							printBenchRow(r)
						}
					}
				}
			}
		}
	}

	if *outPath != "" || *jsonOut {
		doc, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		doc = append(doc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, doc, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %d results to %s\n", len(snap.Results)+len(snap.Churn)+len(snap.Scaling), *outPath)
			return
		}
		os.Stdout.Write(doc)
	}
}

type benchConfig struct {
	packets    int
	profile    string
	cache      int
	skew       string
	zipfS      float64 // < 0 means uniform
	flows      int
	burst      float64
	seed       int64
	splitter   string
	partitions int
	prefixBits int
	// verify > 0 differentially checks the engine against the linear
	// reference over that many headers before timing anything.
	verify int
}

// benchOne measures one engine configuration with the testing package's
// adaptive benchmark loop: each op classifies a whole batch through the
// engine's native ClassifyBatch path (or the generic fallback), with the
// flow cache in front when -cache is set.
func benchOne(name string, stride, rules int, cfg benchConfig) (benchResult, error) {
	p := ruleset.FirewallProfile
	switch cfg.profile {
	case "feature-free":
		p = ruleset.FeatureFree
	case "prefix-only":
		p = ruleset.PrefixOnly
	}
	rs := ruleset.Generate(ruleset.GenConfig{N: rules, Profile: p, Seed: cfg.seed, DefaultRule: true})
	buildStride := stride
	if buildStride == 0 {
		buildStride = 4
	}
	eng, err := cli.BuildEngineOpts(rs, name, cli.Options{
		Stride:     buildStride,
		Partitions: cfg.partitions,
		Splitter:   cfg.splitter,
		PrefixBits: cfg.prefixBits,
	})
	if err != nil {
		return benchResult{}, err
	}
	if cfg.verify > 0 {
		if err := verifyAgainstLinear(eng, rs, cfg.verify, cfg.seed+7); err != nil {
			return benchResult{}, err
		}
	}
	var trace []packet.Header
	if cfg.zipfS >= 0 {
		pop := ruleset.FlowHeaders(rs, cfg.flows, 0.9, cfg.seed+1)
		trace, err = packet.ZipfTrace(pop, packet.ZipfTraceConfig{
			Count: cfg.packets, S: cfg.zipfS, MeanBurst: cfg.burst, Seed: cfg.seed + 2,
		})
		if err != nil {
			return benchResult{}, err
		}
	} else {
		trace = ruleset.GenerateTrace(rs, ruleset.TraceConfig{
			Count: cfg.packets, MatchFraction: 0.9, Locality: 0.3, Seed: cfg.seed + 1,
		})
	}
	var cache *flowcache.Cache
	if cfg.cache > 0 {
		cache = flowcache.New(flowcache.Config{Entries: cfg.cache})
		eng = core.NewCached(eng, cache)
	}
	out := make([]int, len(trace))
	core.ClassifyBatchInto(eng, trace, out) // warm scratch pools and the cache
	warm := flowcache.Stats{}
	if cache != nil {
		warm = cache.Stats()
	}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.ClassifyBatchInto(eng, trace, out)
		}
	})
	nsPerPkt := float64(br.NsPerOp()) / float64(len(trace))
	r := benchResult{
		Engine:       name,
		Rules:        rules,
		Stride:       stride,
		BatchSize:    cfg.packets,
		CacheEntries: cfg.cache,
		NsPerPkt:     nsPerPkt,
		AllocsPerPkt: float64(br.AllocsPerOp()) / float64(len(trace)),
	}
	if cfg.zipfS >= 0 || cfg.cache > 0 {
		r.Skew = cfg.skew
	}
	// Partition knobs only describe the partitioned engines; recording them
	// on flat engines would fork their snapshot keys for no reason.
	if strings.HasPrefix(name, "part-") {
		r.Splitter = cfg.splitter
		r.Partitions = cfg.partitions
		r.PrefixBits = cfg.prefixBits
	}
	if cache != nil {
		// Steady-state hit rate: the warm-up pass absorbs the cold misses.
		st := cache.Stats()
		if lookups := (st.Hits - warm.Hits) + (st.Misses - warm.Misses); lookups > 0 {
			r.HitRate = float64(st.Hits-warm.Hits) / float64(lookups)
		}
	}
	if nsPerPkt > 0 {
		r.PktsPerSec = 1e9 / nsPerPkt
	}
	return r, nil
}

// verifyAgainstLinear differentially checks an engine against the
// priority-ordered linear sweep of the same ruleset before any timing
// starts — the -verify-diff gate CI leans on at the large-N sizes where
// unit tests are too slow to build engines twice. Both the single-packet
// and batched paths must agree with the reference on a directed trace
// (headers steered into rule regions) plus uniform-random headers.
func verifyAgainstLinear(eng core.Engine, rs *ruleset.RuleSet, count int, seed int64) error {
	directed := count * 3 / 4
	hdrs := ruleset.GenerateTrace(rs, ruleset.TraceConfig{
		Count: directed, MatchFraction: 0.9, Locality: 0.3, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	for len(hdrs) < count {
		hdrs = append(hdrs, ruleset.RandomHeader(rng))
	}
	lin := core.NewLinear(rs)
	batch := make([]int, len(hdrs))
	core.ClassifyBatchInto(eng, hdrs, batch)
	for i, h := range hdrs {
		want := lin.Classify(h)
		if got := eng.Classify(h); got != want {
			return fmt.Errorf("verify: %s diverges from linear on %s: got %d want %d", eng.Name(), h, got, want)
		}
		if batch[i] != want {
			return fmt.Errorf("verify: %s batch path diverges from linear on %s: got %d want %d", eng.Name(), h, batch[i], want)
		}
	}
	return nil
}

// scalingWorkerList parses -scale-workers, defaulting to powers of two up
// to GOMAXPROCS (always ending exactly at GOMAXPROCS, so the sweep's top
// point is the machine).
func scalingWorkerList(csv string) ([]int, error) {
	if csv != "" {
		return parseInts(csv)
	}
	max := runtime.GOMAXPROCS(0)
	var wl []int
	for w := 1; w < max; w *= 2 {
		wl = append(wl, w)
	}
	return append(wl, max), nil
}

// parseCacheList parses the -cache CSV; unlike parseInts it accepts 0
// (the uncached series).
func parseCacheList(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("%d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseSkew maps the -skew flag to a Zipf exponent; a negative return
// selects the uniform directed-trace generator.
func parseSkew(s string) (float64, error) {
	if s == "" || s == "uniform" {
		return -1, nil
	}
	rest, ok := strings.CutPrefix(s, "zipf:")
	if !ok {
		return 0, fmt.Errorf("want uniform or zipf:S, got %q", s)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad zipf exponent %q", rest)
	}
	return v, nil
}

// cpuModel reads the CPU model name (Linux /proc/cpuinfo; other platforms
// fall back to the architecture).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}

// gitCommit reports the working tree's short commit hash, empty outside a
// repository.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// compareSnapshots prints per-configuration ns/pkt deltas between two
// snapshot files, so a sequence of BENCH_*.json files reads as a
// trajectory. With maxRegress > 0 it becomes CI's regression gate: any
// configuration whose engine is named in gateCSV (or, via the special name
// "cached", any cache-fronted series) that slows down by more than
// maxRegress percent fails the comparison. New and vanished configurations
// never fail the gate — only measured regressions do.
//
// Snapshots measured on different hardware or at different GOMAXPROCS are
// not comparable: the "regression" would be the machine, not the code.
// When the environment headers disagree the comparison refuses outright
// unless allowEnvMismatch is set, which downgrades the refusal to a loud
// warning (headers missing on either side only warn — old snapshots
// predate them).
func compareSnapshots(oldPath, newPath string, maxRegress float64, gateCSV string, allowEnvMismatch bool) error {
	load := func(path string) (benchSnapshot, error) {
		var s benchSnapshot
		data, err := os.ReadFile(path)
		if err != nil {
			return s, err
		}
		if err := json.Unmarshal(data, &s); err != nil {
			return s, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	oldSnap, err := load(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("old: %s  go %s  commit %s  cpu %s  gomaxprocs %d\n", oldSnap.Date, oldSnap.Go, orDash(oldSnap.Commit), orDash(oldSnap.CPU), oldSnap.GOMAXPROCS)
	fmt.Printf("new: %s  go %s  commit %s  cpu %s  gomaxprocs %d\n\n", newSnap.Date, newSnap.Go, orDash(newSnap.Commit), orDash(newSnap.CPU), newSnap.GOMAXPROCS)
	if msg := envMismatch(oldSnap, newSnap); msg != "" {
		if !allowEnvMismatch {
			return fmt.Errorf("bench: snapshots are not comparable: %s (rerun with -allow-env-mismatch to diff anyway)", msg)
		}
		fmt.Printf("WARNING: %s — deltas below compare machines, not code\n\n", msg)
	}
	oldBy := make(map[string]benchResult, len(oldSnap.Results))
	for _, r := range oldSnap.Results {
		oldBy[r.key()] = r
	}
	matched := make(map[string]bool)
	keys := make([]string, 0, len(newSnap.Results))
	byKey := make(map[string]benchResult, len(newSnap.Results))
	for _, r := range newSnap.Results {
		keys = append(keys, r.key())
		byKey[r.key()] = r
	}
	gated := make(map[string]bool)
	for _, g := range strings.Split(gateCSV, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gated[g] = true
		}
	}
	inGate := func(r benchResult) bool {
		return gated[r.Engine] || (gated["cached"] && r.CacheEntries > 0)
	}
	var failures []string
	sort.Strings(keys)
	fmt.Printf("%-52s %12s %12s %9s\n", "config", "old ns/pkt", "new ns/pkt", "delta")
	for _, k := range keys {
		nr := byKey[k]
		or, ok := oldBy[k]
		if !ok {
			fmt.Printf("%-52s %12s %12.1f %9s\n", k, "-", nr.NsPerPkt, "new")
			continue
		}
		matched[k] = true
		delta := "n/a"
		if or.NsPerPkt > 0 {
			pct := 100 * (nr.NsPerPkt - or.NsPerPkt) / or.NsPerPkt
			delta = fmt.Sprintf("%+.1f%%", pct)
			if maxRegress > 0 && pct > maxRegress && inGate(nr) {
				failures = append(failures, fmt.Sprintf("%s: %+.1f%% (limit %+.1f%%)", k, pct, maxRegress))
			}
		}
		fmt.Printf("%-52s %12.1f %12.1f %9s\n", k, or.NsPerPkt, nr.NsPerPkt, delta)
	}
	for _, r := range oldSnap.Results {
		if !matched[r.key()] {
			fmt.Printf("%-52s %12.1f %12s %9s\n", r.key(), r.NsPerPkt, "-", "gone")
		}
	}
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("REGRESSION", f)
		}
		return fmt.Errorf("bench: %d gated configuration(s) regressed beyond %.1f%%", len(failures), maxRegress)
	}
	return nil
}

// envMismatch reports why two snapshots' environments are not comparable
// ("" when they are). Only populated headers disagree: snapshots written
// before the env header existed carry zero values and merely can't vouch
// for themselves.
func envMismatch(oldSnap, newSnap benchSnapshot) string {
	if oldSnap.GOMAXPROCS != 0 && newSnap.GOMAXPROCS != 0 && oldSnap.GOMAXPROCS != newSnap.GOMAXPROCS {
		return fmt.Sprintf("gomaxprocs %d vs %d", oldSnap.GOMAXPROCS, newSnap.GOMAXPROCS)
	}
	if oldSnap.CPU != "" && newSnap.CPU != "" && oldSnap.CPU != newSnap.CPU {
		return fmt.Sprintf("cpu %q vs %q", oldSnap.CPU, newSnap.CPU)
	}
	return ""
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func printBenchRow(r benchResult) {
	label := r.Engine
	if r.Stride > 0 {
		label = fmt.Sprintf("%s-k%d", r.Engine, r.Stride)
	}
	if r.CacheEntries > 0 {
		label = "cached-" + label
	}
	fmt.Printf("%-20s N=%-5d %10.1f ns/pkt %14.0f pkt/s %8.3f allocs/pkt",
		label, r.Rules, r.NsPerPkt, r.PktsPerSec, r.AllocsPerPkt)
	if r.CacheEntries > 0 {
		fmt.Printf("  %5.1f%% hits", 100*r.HitRate)
	}
	fmt.Println()
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("%d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
