// The bench subcommand: measure the software classification rate of each
// engine's batched fast path over synthetic rulesets at the paper's sizes,
// and optionally emit a BENCH_*.json snapshot so successive revisions can
// track pkts/sec, ns/pkt and allocs/pkt over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"pktclass/internal/cli"
	"pktclass/internal/core"
	"pktclass/internal/ruleset"
)

// benchResult is one (engine, stride, ruleset size) measurement.
type benchResult struct {
	Engine       string  `json:"engine"`
	Rules        int     `json:"rules"`
	Stride       int     `json:"stride,omitempty"`
	BatchSize    int     `json:"batch_size"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	PktsPerSec   float64 `json:"pkts_per_sec"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
}

// benchSnapshot is the BENCH_*.json document.
type benchSnapshot struct {
	Date    string        `json:"date"`
	Go      string        `json:"go"`
	Profile string        `json:"profile"`
	Results []benchResult `json:"results"`
}

func runBench(args []string) {
	fs := flag.NewFlagSet("pclass bench", flag.ExitOnError)
	var (
		engines  = fs.String("engines", "stridebv,fsbv,rangebv,tcam,linear", "comma-separated engines to measure")
		sizes    = fs.String("sizes", "32,128,512,2048", "comma-separated ruleset sizes")
		strides  = fs.String("strides", "3,4", "comma-separated strides for stridebv/rangebv")
		packets  = fs.Int("packets", 1024, "packets per classified batch")
		profile  = fs.String("profile", "prefix-only", "ruleset profile: firewall | feature-free | prefix-only")
		jsonOut  = fs.Bool("json", false, "emit the snapshot as JSON on stdout")
		outPath  = fs.String("out", "", "write the JSON snapshot to this file (implies -json)")
		seedFlag = fs.Int64("seed", 1, "deterministic seed for rulesets and traces")
	)
	fs.Parse(args)
	ns, err := parseInts(*sizes)
	if err != nil {
		log.Fatalf("-sizes: %v", err)
	}
	ks, err := parseInts(*strides)
	if err != nil {
		log.Fatalf("-strides: %v", err)
	}

	snap := benchSnapshot{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		Profile: *profile,
	}
	for _, name := range strings.Split(*engines, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// Only the stride-parameterized engines sweep k; the rest run once
		// per size with the stride recorded as 0.
		engKs := []int{0}
		if name == "stridebv" || name == "rangebv" {
			engKs = ks
		}
		for _, k := range engKs {
			for _, n := range ns {
				r, err := benchOne(name, k, n, *packets, *profile, *seedFlag)
				if err != nil {
					log.Fatalf("%s N=%d: %v", name, n, err)
				}
				snap.Results = append(snap.Results, r)
				if !*jsonOut && *outPath == "" {
					printBenchRow(r)
				}
			}
		}
	}

	if *outPath != "" || *jsonOut {
		doc, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		doc = append(doc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, doc, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %d results to %s\n", len(snap.Results), *outPath)
			return
		}
		os.Stdout.Write(doc)
	}
}

// benchOne measures one engine configuration with the testing package's
// adaptive benchmark loop: each op classifies a whole batch through the
// engine's native ClassifyBatch path (or the generic fallback).
func benchOne(name string, stride, rules, packets int, profile string, seed int64) (benchResult, error) {
	p := ruleset.FirewallProfile
	switch profile {
	case "feature-free":
		p = ruleset.FeatureFree
	case "prefix-only":
		p = ruleset.PrefixOnly
	}
	rs := ruleset.Generate(ruleset.GenConfig{N: rules, Profile: p, Seed: seed, DefaultRule: true})
	buildStride := stride
	if buildStride == 0 {
		buildStride = 4
	}
	eng, err := cli.BuildEngine(rs, name, buildStride)
	if err != nil {
		return benchResult{}, err
	}
	trace := ruleset.GenerateTrace(rs, ruleset.TraceConfig{
		Count: packets, MatchFraction: 0.9, Locality: 0.3, Seed: seed + 1,
	})
	out := make([]int, len(trace))
	core.ClassifyBatchInto(eng, trace, out) // warm any scratch pools
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.ClassifyBatchInto(eng, trace, out)
		}
	})
	nsPerPkt := float64(br.NsPerOp()) / float64(len(trace))
	r := benchResult{
		Engine:       name,
		Rules:        rules,
		Stride:       stride,
		BatchSize:    packets,
		NsPerPkt:     nsPerPkt,
		AllocsPerPkt: float64(br.AllocsPerOp()) / float64(len(trace)),
	}
	if nsPerPkt > 0 {
		r.PktsPerSec = 1e9 / nsPerPkt
	}
	return r, nil
}

func printBenchRow(r benchResult) {
	label := r.Engine
	if r.Stride > 0 {
		label = fmt.Sprintf("%s-k%d", r.Engine, r.Stride)
	}
	fmt.Printf("%-14s N=%-5d %10.1f ns/pkt %14.0f pkt/s %8.3f allocs/pkt\n",
		label, r.Rules, r.NsPerPkt, r.PktsPerSec, r.AllocsPerPkt)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("%d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
