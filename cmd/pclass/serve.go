// The serve subcommand: run the concurrent classification service against
// a load generator, optionally churning ruleset hot-swaps underneath it,
// or (-measure) run the lookup-under-update replay experiment.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pktclass/internal/cli"
	"pktclass/internal/obsv"
	"pktclass/internal/packet"
	"pktclass/internal/partition"
	"pktclass/internal/ruleset"
	"pktclass/internal/serve"
	"pktclass/internal/sim"
	"pktclass/internal/update"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("pclass serve", flag.ExitOnError)
	var (
		rulesPath   = fs.String("rules", "", "ruleset file (required; prefix-only when hot-swaps are enabled)")
		engine      = fs.String("engine", "stridebv", "engine: "+strings.Join(cli.EngineNames(), " | "))
		stride      = fs.Int("stride", 4, "stride length for stridebv/rangebv")
		splitter    = fs.String("splitter", "", "partitioned engines: splitting policy, prefix | band (empty = engine default; band keeps every hot-swap on the O(delta) path)")
		partsN      = fs.Int("partitions", 0, "partitioned engines: band count (0 = derive from GOMAXPROCS)")
		prefixBits  = fs.Int("prefix-bits", 0, "partitioned engines: prefix pre-decoder width (0 = size from N)")
		workers     = fs.Int("workers", 0, "classification workers (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 0, "submission queue depth in batches (0 = 4 per worker)")
		batch       = fs.Int("batch", 64, "packets per submitted batch")
		tracePath   = fs.String("trace", "", "trace file; a directed trace is generated when empty")
		packets     = fs.Int("packets", 50000, "generated trace length when -trace is empty")
		cacheN      = fs.Int("cache", 0, "flow-cache capacity in entries fronting the engine (0 = uncached)")
		steer       = fs.Bool("steer", false, "RSS-style flow steering: hash each packet's flow key to a fixed worker; with -cache the flow cache becomes worker-private shards (full queues block submitters instead of rejecting)")
		skew        = fs.String("skew", "uniform", "generated-trace skew: uniform | zipf:S (e.g. zipf:1.2)")
		flows       = fs.Int("flows", 4096, "flow population size for zipf traffic")
		burst       = fs.Float64("burst", 4, "mean flow-burst length for zipf traffic")
		duration    = fs.Duration("duration", 2*time.Second, "load-generator run time")
		clients     = fs.Int("clients", 4, "load-generator goroutines")
		updateEvery = fs.Duration("update-every", 0, "interval between ruleset hot-swaps (0 disables churn)")
		opsPerSwap  = fs.Int("ops-per-swap", 8, "rule replacements per hot-swap")
		incremental = fs.Bool("incremental", false, "apply hot-swaps through the engines' O(delta) update path (scoped verify + rebuild fallback)")
		measure     = fs.Bool("measure", false, "replay the trace once under continuous churn and report throughput degradation")
		swaps       = fs.Int("swaps", 0, "bound on hot-swaps in -measure mode (0 = churn for the whole replay)")
		seed        = fs.Int64("seed", 1, "deterministic seed for traces and update streams")
		obsvAddr    = fs.String("obsv", "", "observability HTTP address (e.g. :9090): /metrics, /statusz, /tracez, /topflows, /eventz, /debug/pprof (empty disables)")
		sample      = fs.Int("sample", 0, "sampled packet tracing: record 1 in N packets hop by hop (0 disables)")
		top         = fs.Int("top", 0, "end-of-run heavy-hitter report: print the top N detected flows (steered mode; implies observability)")
	)
	fs.Parse(args)
	if *rulesPath == "" {
		fs.Usage()
		os.Exit(2)
	}

	rs, err := cli.LoadRuleSet(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	hdrs, err := loadOrGenerateTrace(*tracePath, rs, traceSpec{
		packets: *packets, skew: *skew, flows: *flows, burst: *burst, seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := cli.EngineBuilderOpts(*engine, cli.Options{
		Stride: *stride, Partitions: *partsN, Splitter: *splitter, PrefixBits: *prefixBits,
	})

	// Observability is on whenever any of the flags asks for it: -obsv
	// alone serves histograms and pprof, -sample alone records traces for
	// the end-of-run report, -top alone arms the heavy-hitter detector.
	var obs *obsv.Obs
	if *obsvAddr != "" || *sample > 0 || *top > 0 {
		obs = newObs(*sample)
	}
	if obs != nil {
		// Pool growth becomes a journaled control-plane event; wire the
		// hook before the explicit sizing below so the initial growth is
		// recorded too.
		partition.SetPoolResizeHook(func(oldSize, newSize int) {
			obs.Journal.Append(obsv.EventPoolResize, 0, int64(oldSize), int64(newSize), 0)
		})
	}

	// The partitioned engines fan every batch into a package-shared
	// sub-engine pool sized for one lone engine by default; under the
	// serving layer the real concurrency is workers x partitions, so size
	// it explicitly (capped — beyond the core count extra goroutines only
	// add scheduler pressure; the inline-fallback counter reports any
	// remaining undersizing).
	if strings.HasPrefix(*engine, "part-") {
		effWorkers := *workers
		if effWorkers <= 0 {
			effWorkers = runtime.GOMAXPROCS(0)
		}
		parts := *partsN
		if parts <= 0 {
			parts = runtime.GOMAXPROCS(0)
		}
		pool := effWorkers * parts
		if lim := 4 * runtime.GOMAXPROCS(0); pool > lim {
			pool = lim
		}
		partition.SetPoolSize(pool)
	}

	if *measure {
		res, err := sim.ServeTrace(rs, build, hdrs, sim.ServeConfig{
			Workers:      *workers,
			QueueDepth:   *queue,
			BatchSize:    *batch,
			Swaps:        *swaps,
			OpsPerSwap:   *opsPerSwap,
			CacheEntries: *cacheN,
			Steer:        *steer,
			Churn:        true,
			Incremental:  *incremental,
			Seed:         *seed,
			Obs:          obs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packets          %d\n", res.Packets)
		fmt.Printf("elapsed          %s\n", res.Elapsed)
		fmt.Printf("throughput       %.0f pkt/s under churn\n", res.PacketsPerSec)
		fmt.Printf("baseline         %.0f pkt/s churn-free\n", res.BaselinePacketsPerSec)
		fmt.Printf("degradation      %.1f%%\n", res.DegradationPct)
		fmt.Printf("backpressure     %d resubmits\n", res.Resubmits)
		fmt.Print(res.Counters.Table())
		if obs != nil {
			printObsSummary(obs)
		}
		return
	}

	svc, err := serve.New(rs, build, serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		Steer:        *steer,
		Incremental:  *incremental,
		TopFlows:     *top,
		Seed:         *seed,
		Obs:          obs,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *obsvAddr != "" {
		obsSrv, bound, err := startObsServer(*obsvAddr, obs, svc)
		if err != nil {
			log.Fatalf("obsv server: %v", err)
		}
		fmt.Printf("observability    http://%s/{metrics,statusz,tracez,topflows,eventz,debug/pprof}\n", bound)
		defer func() {
			shCtx, shCancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer shCancel()
			obsSrv.Shutdown(shCtx)
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var wg sync.WaitGroup
	var total, retries atomic.Int64
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			lo := (off * *batch) % len(hdrs)
			for ctx.Err() == nil {
				hi := lo + *batch
				if hi > len(hdrs) {
					hi = len(hdrs)
				}
				res, err := svc.Classify(ctx, hdrs[lo:hi])
				if err == serve.ErrQueueFull {
					retries.Add(1)
					runtime.Gosched()
					continue
				}
				if err != nil {
					return
				}
				total.Add(int64(len(res)))
				lo = hi % len(hdrs)
			}
		}(c)
	}
	if *updateEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(*updateEvery)
			defer tick.Stop()
			s := *seed + 1
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					ops, err := update.GenerateOps(svc.RuleSet(), *opsPerSwap, s)
					if err != nil {
						log.Print(err)
						return
					}
					s++
					if err := svc.ApplyOps(ops); err != nil {
						log.Print(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	closeCtx, closeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer closeCancel()
	if err := svc.Close(closeCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}

	fmt.Printf("engine           %s\n", svc.Engine().Name())
	fmt.Printf("clients          %d over %s\n", *clients, *duration)
	fmt.Printf("throughput       %.0f pkt/s\n", float64(total.Load())/duration.Seconds())
	fmt.Printf("client retries   %d\n", retries.Load())
	if svc.Steered() {
		fmt.Printf("steered workers  %v packets each\n", svc.WorkerClassified())
		fmt.Printf("imbalance index  %.3f (max/mean worker load; 1.0 = balanced)\n", svc.ImbalanceIndex())
	}
	if strings.HasPrefix(*engine, "part-") {
		fmt.Printf("partition pool   %d workers, %d inline fallbacks\n", partition.PoolSize(), partition.InlineFallbacks())
	}
	fmt.Print(svc.Counters().Table())
	if *top > 0 {
		printTopFlows(svc, *top)
	}
	if obs != nil {
		printObsSummary(obs)
		printJournalTail(obs.Journal, 10)
	}
}

// printTopFlows renders the end-of-run heavy-hitter table (-top N).
func printTopFlows(svc *serve.Service, n int) {
	det := svc.FlowStats()
	if det == nil {
		fmt.Println("top flows        detector off (requires -steer)")
		return
	}
	rep := det.Report(n)
	fmt.Printf("top flows        %d observed packets, top-%d share %.1f%%\n",
		rep.Packets, rep.K, 100*rep.TopShare)
	for i, fc := range rep.Flows {
		fmt.Printf("  #%-3d %-10d %5.2f%%  worker=%d  %s\n",
			i+1, fc.Count, 100*fc.Share, fc.Worker, fc.Hdr)
	}
}

// printJournalTail renders the newest control-plane events (swap commits,
// rollbacks, fallbacks, retirements, pool resizes, rebalance candidates).
func printJournalTail(j *obsv.Journal, n int) {
	events := j.Snapshot()
	if len(events) == 0 {
		return
	}
	if len(events) > n {
		events = events[:n]
	}
	st := j.Stats()
	fmt.Printf("control-plane journal (%d events, %d dropped; newest first)\n", st.Appended, st.Dropped)
	for _, ev := range events {
		fmt.Printf("  %s\n", ev)
	}
}

// traceSpec parameterizes generated load: packet count plus the skew knobs
// of the Zipf flow-burst generator.
type traceSpec struct {
	packets int
	skew    string
	flows   int
	burst   float64
	seed    int64
}

// loadOrGenerateTrace reads the trace file when given, or generates load
// from the ruleset: a directed trace for -skew uniform, a Zipf flow-burst
// trace for -skew zipf:S.
func loadOrGenerateTrace(path string, rs *ruleset.RuleSet, spec traceSpec) ([]packet.Header, error) {
	if path != "" {
		return cli.LoadTrace(path)
	}
	if spec.packets <= 0 {
		return nil, fmt.Errorf("pclass serve: -packets must be positive when no -trace is given")
	}
	zipfS, err := parseSkew(spec.skew)
	if err != nil {
		return nil, fmt.Errorf("pclass serve: -skew: %w", err)
	}
	if zipfS < 0 {
		return ruleset.GenerateTrace(rs, ruleset.TraceConfig{
			Count: spec.packets, MatchFraction: 0.8, Locality: 0.3, Seed: spec.seed,
		}), nil
	}
	pop := ruleset.FlowHeaders(rs, spec.flows, 0.8, spec.seed)
	return packet.ZipfTrace(pop, packet.ZipfTraceConfig{
		Count: spec.packets, S: zipfS, MeanBurst: spec.burst, Seed: spec.seed + 1,
	})
}
