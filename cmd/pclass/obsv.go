// Observability wiring for the serve subcommand: the -sample / -obsv flags
// build an obsv.Obs instrument set, the exposition server publishes the
// service's live state (/metrics, /statusz, /tracez, /debug/pprof), and the
// end-of-run report prints the latency histograms and the freshest sampled
// trace.
package main

import (
	"fmt"
	"time"

	"pktclass/internal/core"
	"pktclass/internal/obsv"
	"pktclass/internal/packet"
	"pktclass/internal/partition"
	"pktclass/internal/serve"
	"pktclass/internal/stridebv"
	"pktclass/internal/tcam"
)

// newObs builds the serving instrument set: histograms always on, packet
// tracing at 1-in-sample (0 disables tracing but keeps histograms).
func newObs(sample int) *obsv.Obs {
	var tracer *obsv.Tracer
	if sample > 0 {
		tracer = obsv.NewTracer(sample, 128)
	}
	return obsv.NewObs(obsv.NewRegistry(nil), tracer)
}

// startObsServer starts the exposition server on addr, wiring the
// service's dynamic state as scrape-time collectors. The returned address
// is the bound listener's.
func startObsServer(addr string, obs *obsv.Obs, svc *serve.Service) (*obsv.Server, string, error) {
	srv := obsv.NewServer(obs.Reg, obs.Tracer)
	srv.SetJournal(obs.Journal)
	srv.AddStatus("journal", func() any { return obs.Journal.Stats() })
	for i := 0; i < svc.Workers(); i++ {
		shard := i
		srv.AddGaugeFunc(fmt.Sprintf("serve.shard_depth{shard=%q}", fmt.Sprint(shard)), func() float64 {
			return float64(svc.ShardDepths()[shard])
		})
	}
	// The partition pool instruments are registered unconditionally: a
	// non-partitioned engine scrapes them as flat zeros, a partitioned one
	// sees the live pool size and inline-fallback pressure that were
	// previously only printed at end of run.
	srv.AddGaugeFunc("partition.pool_size", func() float64 {
		return float64(partition.PoolSize())
	})
	srv.AddGaugeFunc("partition.inline_fallbacks", func() float64 {
		return float64(partition.InlineFallbacks())
	})
	if svc.Steered() {
		// Each scrape samples the load window, so the imbalance series at
		// /metrics advances at scrape cadence and the rebalance-candidate
		// check runs as a free side effect.
		srv.AddGaugeFunc("serve.imbalance_index", func() float64 {
			return svc.ImbalanceIndex()
		})
		srv.AddStatus("worker_loads", func() any { return svc.WorkerLoads() })
		for i := 0; i < svc.Workers(); i++ {
			w := i
			srv.AddGaugeFunc(fmt.Sprintf("serve.worker_classified{worker=%q}", fmt.Sprint(w)), func() float64 {
				return float64(svc.WorkerClassified()[w])
			})
			srv.AddGaugeFunc(fmt.Sprintf("serve.worker_batches{worker=%q}", fmt.Sprint(w)), func() float64 {
				return float64(svc.WorkerLoads()[w].Batches)
			})
		}
		if det := svc.FlowStats(); det != nil {
			srv.SetTopFlows(det.Report)
			srv.AddGaugeFunc("flowstats.packets", func() float64 {
				return float64(det.Packets())
			})
			srv.AddGaugeFunc("flowstats.topk_share", func() float64 {
				return det.TopKShare()
			})
			srv.AddStatus("top_flows", func() any { return det.Report(8) })
		}
		if stats := svc.WorkerCacheStats(); stats != nil {
			for i := range stats {
				w := i
				srv.AddGaugeFunc(fmt.Sprintf("flowcache.worker_hit_rate{worker=%q}", fmt.Sprint(w)), func() float64 {
					return svc.WorkerCacheStats()[w].HitRate()
				})
			}
			srv.AddStatus("flowcache_workers", func() any {
				return svc.WorkerCacheStats()
			})
		}
	}
	if _, ok := svc.CacheStats(); ok {
		srv.AddGaugeFunc("flowcache.hit_rate", func() float64 {
			st, _ := svc.CacheStats()
			return st.HitRate()
		})
		srv.AddGaugeFunc("flowcache.entries", func() float64 {
			st, _ := svc.CacheStats()
			return float64(st.Entries)
		})
		srv.AddGaugeFunc("flowcache.generation", func() float64 {
			st, _ := svc.CacheStats()
			return float64(st.Generation)
		})
		srv.AddStatus("flowcache", func() any {
			st, _ := svc.CacheStats()
			return st
		})
	}
	srv.AddGaugeFunc("engine.memory_bits", func() float64 {
		return float64(engineMemoryBits(svc.Engine()))
	})
	srv.AddStatus("engine", func() any {
		eng := svc.Engine()
		return map[string]any{
			"name":        eng.Name(),
			"rules":       eng.NumRules(),
			"memory_bits": engineMemoryBits(eng),
		}
	})
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// engineMemoryBits reports the live engine's memory requirement in bits,
// unwrapping the flow cache first. Engines without a hardware memory model
// report 0.
func engineMemoryBits(eng core.Engine) int {
	if c, ok := eng.(*core.Cached); ok {
		eng = c.Unwrap()
	}
	switch e := eng.(type) {
	case *stridebv.Engine:
		return e.MemoryBits()
	case *stridebv.RangeEngine:
		return e.MemoryBits()
	case *tcam.Behavioral:
		return tcam.MemoryBits(e.NumEntries(), packet.W)
	case *tcam.FPGA:
		return tcam.MemoryBits(e.NumEntries(), packet.W)
	default:
		return 0
	}
}

// printObsSummary renders the end-of-run latency distributions and, when
// tracing was on, the freshest sampled trace — the hop-by-hop account of
// one packet's decision.
func printObsSummary(obs *obsv.Obs) {
	snap := obs.Reg.Snapshot()
	order := []string{
		obsv.HistSubmitWait,
		obsv.HistSteerScatter,
		obsv.HistClassifyBatch,
		obsv.HistCacheProbe,
		obsv.HistSwapBuild,
		obsv.HistSwapVerify,
		obsv.HistSwapTotal,
	}
	fmt.Println("latency histograms")
	for _, name := range order {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Printf("  %-22s %s\n", name, h)
	}
	if st := obs.Tracer.Stats(); st.Every > 0 {
		fmt.Printf("tracer            1/%d sampling, %d sampled of %d packets (%d busy drops)\n",
			st.Every, st.Sampled, st.Packets, st.Busy)
		if traces := obs.Tracer.Snapshot(); len(traces) > 0 {
			fmt.Printf("freshest sampled trace (total %s):\n%s\n",
				time.Duration(traces[0].TotalNanos), traces[0].String())
		}
	}
}
