// The -churn mode of pclass bench: measure sustained rule-update
// throughput against a live serving classifier, incremental (O(delta)
// engine updates) versus rebuild (full shadow build per swap), and the
// classify-latency cost of the churn versus a churn-free run of the same
// service. This is the operational readout behind the paper's Section IV-C
// reconfigurability claim: updates per second the engine absorbs while
// still answering lookups at speed.
package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"pktclass/internal/cli"
	"pktclass/internal/core"
	"pktclass/internal/obsv"
	"pktclass/internal/packet"
	"pktclass/internal/ruleset"
	"pktclass/internal/serve"
	"pktclass/internal/update"
)

// churnResult is one (engine, size, mode) churn measurement.
type churnResult struct {
	Engine string `json:"engine"`
	Rules  int    `json:"rules"`
	// Mode is "incremental" or "rebuild".
	Mode string `json:"mode"`
	// RuleOps is the number of single-rule replacements committed; the rate
	// divides by the churn phase's wall time.
	RuleOps       int64   `json:"rule_ops"`
	RuleOpsPerSec float64 `json:"rule_ops_per_sec"`
	// ClassifyP99Ns is the service's per-batch classify p99 under churn;
	// BaselineP99Ns is the same service's p99 with no updater running, and
	// P99DeltaPct the relative cost ((churn-baseline)/baseline).
	ClassifyP99Ns int64   `json:"classify_p99_ns"`
	BaselineP99Ns int64   `json:"baseline_p99_ns"`
	P99DeltaPct   float64 `json:"p99_delta_pct"`
	// Swap accounting, straight from the service counters: Swaps is the
	// rebuild path, IncrementalSwaps the O(delta) path, Rollbacks failed
	// scoped verifies (retried as rebuilds), Fallbacks structural deltas.
	Swaps            int64 `json:"swaps"`
	IncrementalSwaps int64 `json:"incremental_swaps"`
	Rollbacks        int64 `json:"incremental_rollbacks,omitempty"`
	Fallbacks        int64 `json:"incremental_fallbacks,omitempty"`
}

func (r churnResult) key() string {
	return fmt.Sprintf("churn %s N=%d mode=%s", r.Engine, r.Rules, r.Mode)
}

// churnConfig carries the bench flags the churn mode consumes.
type churnConfig struct {
	stride     int
	workers    int
	batch      int
	opsPerSwap int
	dur        time.Duration
	verify     int
	seed       int64
}

// churnOne measures one engine at one size in one mode: a churn-free
// baseline phase fixes the classify p99 reference, then the churn phase
// runs a dedicated updater flat out against the same serving setup.
func churnOne(name string, n int, incremental bool, cfg churnConfig) (churnResult, error) {
	rs := ruleset.Generate(ruleset.GenConfig{N: n, Profile: ruleset.PrefixOnly, Seed: cfg.seed, DefaultRule: true})
	if rs.ExpansionFactor() != 1 {
		return churnResult{}, fmt.Errorf("churn requires a prefix-only ruleset (expansion factor %.2f)", rs.ExpansionFactor())
	}
	build := func(r *ruleset.RuleSet) (core.Engine, error) {
		return cli.BuildEngine(r, name, cfg.stride)
	}
	trace := ruleset.GenerateTrace(rs, ruleset.TraceConfig{
		Count: 4096, MatchFraction: 0.9, Locality: 0.3, Seed: cfg.seed + 1,
	})
	baseP99, _, _, _, err := churnPhase(rs, build, trace, cfg, false, incremental)
	if err != nil {
		return churnResult{}, err
	}
	p99, counters, ruleOps, elapsed, err := churnPhase(rs, build, trace, cfg, true, incremental)
	if err != nil {
		return churnResult{}, err
	}
	mode := "rebuild"
	if incremental {
		mode = "incremental"
	}
	r := churnResult{
		Engine:           name,
		Rules:            n,
		Mode:             mode,
		RuleOps:          ruleOps,
		ClassifyP99Ns:    p99,
		BaselineP99Ns:    baseP99,
		Swaps:            counters.Swaps,
		IncrementalSwaps: counters.IncrementalSwaps,
		Rollbacks:        counters.IncrementalRollbacks,
		Fallbacks:        counters.IncrementalFallbacks,
	}
	if elapsed > 0 {
		r.RuleOpsPerSec = float64(ruleOps) / elapsed.Seconds()
	}
	if baseP99 > 0 {
		r.P99DeltaPct = 100 * float64(p99-baseP99) / float64(baseP99)
	}
	return r, nil
}

// churnPhase runs one service with a continuous classify load for cfg.dur
// and, when churn is set, an updater applying cfg.opsPerSwap-rule batches
// as fast as the swap path commits them. It reports the classify-batch p99
// from the service's own histogram, the final counters, and the committed
// rule-op count over the churn phase's measured wall time.
func churnPhase(rs *ruleset.RuleSet, build serve.BuildFunc, trace []packet.Header, cfg churnConfig, churn, incremental bool) (p99 int64, counters serve.Counters, ruleOps int64, elapsed time.Duration, err error) {
	// Collect garbage left by the previous configuration so one phase's
	// heap does not bill GC pauses to the next one's latency histogram.
	runtime.GC()
	obs := obsv.NewObs(nil, nil)
	svc, err := serve.New(rs.Clone(), build, serve.Config{
		Workers:       cfg.workers,
		Incremental:   incremental,
		VerifyPackets: cfg.verify,
		Seed:          cfg.seed,
		Obs:           obs,
	})
	if err != nil {
		return 0, serve.Counters{}, 0, 0, err
	}
	defer svc.Close(context.Background())

	stop := make(chan struct{})
	classifierDone := make(chan error, 1)
	go func() {
		lo := 0
		for {
			select {
			case <-stop:
				classifierDone <- nil
				return
			default:
			}
			hi := lo + cfg.batch
			if hi > len(trace) {
				lo, hi = 0, cfg.batch
			}
			if _, err := svc.Classify(context.Background(), trace[lo:hi]); err != nil {
				classifierDone <- err
				return
			}
			lo = hi
		}
	}()

	start := time.Now()
	deadline := start.Add(cfg.dur)
	seed := cfg.seed + 100
	for time.Now().Before(deadline) {
		if !churn {
			time.Sleep(time.Millisecond)
			continue
		}
		ops, err := update.GenerateOps(svc.RuleSet(), cfg.opsPerSwap, seed)
		if err != nil {
			close(stop)
			<-classifierDone
			return 0, serve.Counters{}, 0, 0, err
		}
		seed++
		if err := svc.ApplyOps(ops); err != nil {
			// A rolled-back swap is a measured outcome, not a harness error;
			// its ops did not commit and are not counted.
			if !isRollback(err) {
				close(stop)
				<-classifierDone
				return 0, serve.Counters{}, 0, 0, err
			}
			continue
		}
		ruleOps += int64(len(ops))
	}
	elapsed = time.Since(start)
	close(stop)
	if err := <-classifierDone; err != nil {
		return 0, serve.Counters{}, 0, 0, err
	}
	if err := svc.Close(context.Background()); err != nil {
		return 0, serve.Counters{}, 0, 0, err
	}
	return obs.ClassifyBatch.Snapshot().Quantile(0.99), svc.Counters(), ruleOps, elapsed, nil
}

func isRollback(err error) bool { return errors.Is(err, serve.ErrRolledBack) }

func printChurnRow(r churnResult) {
	fmt.Printf("%-12s N=%-6d %-12s %10.0f ops/s  p99 %8s (baseline %8s, %+5.1f%%)  swaps=%d inc=%d rb=%d fb=%d\n",
		r.Engine, r.Rules, r.Mode, r.RuleOpsPerSec,
		time.Duration(r.ClassifyP99Ns), time.Duration(r.BaselineP99Ns), r.P99DeltaPct,
		r.Swaps, r.IncrementalSwaps, r.Rollbacks, r.Fallbacks)
}
