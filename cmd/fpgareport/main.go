// Command fpgareport prints the full hardware evaluation (clock,
// throughput, resources, power, placement geometry) for one engine
// configuration on the modeled Virtex-7 — the per-configuration view
// behind the figures cmd/experiments sweeps.
//
// Usage:
//
//	fpgareport -engine stridebv -n 1024 -stride 4 -mem distram -floorplan
//	fpgareport -engine tcam -n 512
package main

import (
	"flag"
	"fmt"
	"log"

	"pktclass/internal/floorplan"
	"pktclass/internal/fpga"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgareport: ")
	var (
		engine = flag.String("engine", "stridebv", "engine: stridebv | tcam")
		n      = flag.Int("n", 512, "ruleset size (ternary entries)")
		stride = flag.Int("stride", 4, "StrideBV stride length")
		mem    = flag.String("mem", "distram", "StrideBV stage memory: distram | bram")
		fp     = flag.Bool("floorplan", false, "use PlanAhead-style floorplanning")
		seed   = flag.Int64("seed", 1, "placement seed")
		tool   = flag.Bool("tool", false, "ISE-style sectioned report (MAP/TRCE/XPower)")
		die    = flag.Bool("die", false, "render the placed die map and longest nets")
	)
	flag.Parse()

	d := fpga.Virtex7()
	fmt.Println(d)
	emit := func(r fpga.Report) {
		if *tool {
			fmt.Print(r.ToolReport())
		} else {
			fmt.Print(r)
		}
		if *die && r.Placement != nil {
			fmt.Println()
			fmt.Print(r.Placement.Render(100, 30))
			fmt.Print(r.Placement.Summary(8))
		}
	}
	switch *engine {
	case "stridebv":
		memory := fpga.DistRAM
		switch *mem {
		case "distram":
		case "bram":
			memory = fpga.BlockRAM
		default:
			log.Fatalf("unknown memory kind %q", *mem)
		}
		mode := floorplan.Automatic
		if *fp {
			mode = floorplan.Floorplanned
		}
		r, err := fpga.EvaluateStrideBV(d, fpga.StrideBVConfig{Ne: *n, K: *stride, Memory: memory}, mode, *seed)
		if err != nil {
			log.Fatal(err)
		}
		emit(r)
	case "tcam":
		r, err := fpga.EvaluateTCAM(d, fpga.TCAMConfig{Ne: *n}, *seed)
		if err != nil {
			log.Fatal(err)
		}
		emit(r)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
}
