// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes the results as text (default) or as the
// markdown body of EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # full sweep, text, to stdout
//	experiments -md -o out.md   # markdown, to file
//	experiments -ns 32,512      # restricted sweep
//	experiments -only fig4      # one experiment
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pktclass/internal/experiments"
	"pktclass/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		md   = flag.Bool("md", false, "emit markdown tables")
		plot = flag.Bool("plot", false, "render figures as ASCII charts (with -only)")
		out  = flag.String("o", "-", "output file ('-' = stdout)")
		ns   = flag.String("ns", "", "comma-separated ruleset sizes (default: paper sweep)")
		seed = flag.Int64("seed", 1, "placement/ruleset seed")
		only = flag.String("only", "", "run a single experiment: table1|fig4|fig5|fig6|fig7|fig8|fig9|fig10|table2|asic|verify|multipipe|features|partition|updates|asic-compare|latency|modular|devices|stride-ablation")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.Seed = *seed
	if *ns != "" {
		cfg.Ns = nil
		for _, tok := range strings.Split(*ns, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad -ns element %q", tok)
			}
			cfg.Ns = append(cfg.Ns, n)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if *only == "" {
		if err := experiments.RunAll(cfg, bw, *md); err != nil {
			log.Fatal(err)
		}
		return
	}

	emitFig := func(f *metrics.Figure, err error) {
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *plot && strings.Contains(f.YLabel, "mW/Gbps"):
			fmt.Fprintln(bw, f.LogASCIIPlot(16))
		case *plot:
			fmt.Fprintln(bw, f.ASCIIPlot(16))
		case *md:
			fmt.Fprintln(bw, f.Markdown())
		default:
			fmt.Fprintln(bw, f)
		}
	}
	emitTable := func(t *metrics.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if *md {
			fmt.Fprintln(bw, t.Markdown())
		} else {
			fmt.Fprintln(bw, t)
		}
	}
	switch *only {
	case "table1":
		emitTable(experiments.TableI(), nil)
	case "fig4":
		emitFig(experiments.Fig4(cfg))
	case "fig5":
		emitFig(experiments.Fig5(cfg))
	case "fig6":
		emitFig(experiments.Fig6(cfg))
	case "fig7":
		emitFig(experiments.Fig7(cfg))
	case "fig8":
		emitFig(experiments.Fig8(cfg))
	case "fig9":
		emitFig(experiments.Fig9(cfg))
	case "fig10":
		emitFig(experiments.Fig10(cfg))
	case "table2":
		emitTable(experiments.TableII(cfg))
	case "asic":
		emitFig(experiments.ASICPower(cfg), nil)
	case "verify":
		emitTable(experiments.VerifySummary(cfg))
	case "multipipe":
		emitFig(experiments.ExtMultiPipeline(cfg))
	case "features":
		emitTable(experiments.ExtFeatureDependence(cfg))
	case "partition":
		emitTable(experiments.ExtPartitionedTCAM(cfg))
	case "updates":
		emitTable(experiments.ExtUpdateRate(cfg))
	case "asic-compare":
		emitTable(experiments.ExtASIC(cfg))
	case "latency":
		emitTable(experiments.ExtLatency(cfg))
	case "modular":
		emitFig(experiments.ExtModular(cfg))
	case "devices":
		emitTable(experiments.ExtDevices(cfg))
	case "stride-ablation":
		emitFig(experiments.AblationStride(cfg))
	default:
		log.Fatalf("unknown experiment %q", *only)
	}
}
